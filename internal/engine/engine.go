// Package engine executes workflow invocations under the paper's two
// scheduling patterns:
//
//   - ModeWorkerSP — FaaSFlow's worker-side pattern (§3, §4.2): each worker
//     runs a decentralized engine holding the Workflow/State/FunctionInfo
//     structures for its sub-graph. Functions trigger locally; only state
//     updates cross the network, and only when an edge spans workers.
//   - ModeMasterSP — the HyperFlow-serverless baseline (§2.2): a central
//     engine on the master node holds all state, assigns every ready task
//     to its worker over the network, and collects every completion.
//
// Both patterns run over the same simulated substrate (cluster nodes,
// network fabric, FaaStore hybrid storage), so measured differences come
// from the pattern itself — the paper's experimental design.
//
// Engine processing is serialized per engine instance, mirroring the
// single-threaded gevent loops of the artifact: a busy master delays every
// trigger decision, which is exactly the overhead WorkerSP removes.
package engine

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/dag"
	"repro/internal/expr"
	"repro/internal/journal"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/workloads"
)

// Mode selects the scheduling pattern.
type Mode int

const (
	// ModeWorkerSP triggers functions on worker-local engines (FaaSFlow).
	ModeWorkerSP Mode = iota
	// ModeMasterSP triggers functions from the central master engine
	// (HyperFlow-serverless).
	ModeMasterSP
)

func (m Mode) String() string {
	switch m {
	case ModeWorkerSP:
		return "WorkerSP"
	case ModeMasterSP:
		return "MasterSP"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// DataMode selects whether function payloads move through storage.
type DataMode int

const (
	// DataNone packs all inputs into the container image (the paper's
	// §2.3/§5.2 methodology for isolating scheduling overhead).
	DataNone DataMode = iota
	// DataStore moves every edge payload through FaaStore / the remote DB.
	DataStore
)

// Options tunes engine cost constants. Zero values take defaults.
type Options struct {
	Mode Mode
	Data DataMode
	// MasterProc is the master engine's per-event processing time (event
	// parsing, trigger-condition checks, task marshalling).
	MasterProc time.Duration
	// WorkerProc is a worker engine's per-event processing time.
	WorkerProc time.Duration
	// StateMsgBytes is the size of a cross-worker state-update message.
	StateMsgBytes int64
	// AssignMsgBytes is the size of a MasterSP task-assignment message.
	AssignMsgBytes int64
	// NoJitter disables the ±15% per-task execution-time variation. The
	// scheduling-overhead experiments (§5.2) use it: they compare
	// end-to-end latency against the critical path's nominal execution
	// time, so run-to-run compute variance would read as overhead.
	NoJitter bool
	// FailureRate injects container crashes: each executor attempt fails
	// with this probability (deterministically, per attempt). Crashed
	// containers are destroyed and the attempt retried up to MaxAttempts.
	FailureRate float64
	// MaxAttempts bounds executor attempts when FailureRate > 0
	// (default 3, capped at 256). An executor that exhausts its attempts
	// marks the invocation failed; the failure propagates like a skip so
	// the workflow drains instead of hanging.
	MaxAttempts int
	// TaskTimeout bounds one executor attempt (container acquire through
	// output store). When > 0, an attempt that has not completed within
	// the window is abandoned and re-issued — the recovery path for tasks
	// stranded on a node that died mid-flight. It must exceed the longest
	// healthy task's end-to-end time or healthy work gets re-issued.
	TaskTimeout time.Duration
	// BackoffBase is the first retry/re-issue backoff delay; it doubles
	// with each subsequent failure of the same executor, capped at
	// BackoffMax. Zero (the default) disables backoff, preserving the
	// immediate-retry behaviour of plain crash injection.
	BackoffBase time.Duration
	// BackoffMax caps exponential backoff (default 30s when BackoffBase is
	// set).
	BackoffMax time.Duration
	// MaxReissues bounds fault-driven re-issues (timeouts, node deaths)
	// per executor, separately from the crash-attempt budget (default 8).
	// An executor that exhausts its re-issues marks the invocation failed.
	MaxReissues int
	// ExecScale, when non-nil, multiplies each task's execution time by
	// the returned per-function factor at dispatch. Counterfactual
	// profiling uses it so the scheduler's placement inputs (the nominal
	// per-function ExecSeconds) stay identical while the simulated cost
	// changes. A factor of 0 makes execution near-instant.
	ExecScale func(function string) float64
	// Journal enables durable execution: every task completion is logged
	// as a StepCommitted record before the step's state propagates, and
	// CrashEngine/RestartEngine replay the log to resume in-flight
	// invocations without re-executing committed steps. Nil (the default)
	// disables journaling entirely.
	Journal *journal.WAL
	// FastPath enables the data-plane fast path: direct producer→consumer
	// output passing, DAG-lookahead container pre-warm, and content-addressed
	// output memoization (see fastpath.go). All off by default.
	FastPath FastPathOptions
}

func (o Options) withDefaults() Options {
	if o.MasterProc == 0 {
		o.MasterProc = 11 * time.Millisecond
	}
	if o.WorkerProc == 0 {
		o.WorkerProc = 1500 * time.Microsecond
	}
	if o.StateMsgBytes == 0 {
		o.StateMsgBytes = 256
	}
	if o.AssignMsgBytes == 0 {
		o.AssignMsgBytes = 1024
	}
	if o.FailureRate > 0 && o.MaxAttempts == 0 {
		o.MaxAttempts = 3
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 1
	}
	if o.MaxAttempts > 256 {
		o.MaxAttempts = 256
	}
	if o.MaxReissues <= 0 {
		o.MaxReissues = 8
	}
	if o.BackoffBase > 0 && o.BackoffMax == 0 {
		o.BackoffMax = 30 * time.Second
	}
	if o.FastPath.Memoize && o.FastPath.MemoLookup == 0 {
		o.FastPath.MemoLookup = 200 * time.Microsecond
	}
	return o
}

// Runtime bundles the shared substrate a deployment executes on.
type Runtime struct {
	Env    *sim.Env
	Fabric *network.Fabric
	Nodes  map[string]*cluster.Node
	Store  *store.Hybrid
	// Master is the fabric ID of the master/storage node.
	Master string
}

// proc is a serialized event processor: one engine's single-threaded loop.
type proc struct {
	env       *sim.Env
	cost      time.Duration
	busyUntil sim.Time
	busy      time.Duration // cumulative processing time
	events    int64
}

// process enqueues fn on the loop and reports the slot's timing — enqueue
// instant, slot start (later than enq when the loop was busy), and slot
// end, when fn actually runs. Callers that observe feed these to the
// trigger-chain builders; everyone else ignores them.
func (p *proc) process(fn func()) (enq, start, done sim.Time) {
	enq = p.env.Now()
	start = enq
	if p.busyUntil > start {
		start = p.busyUntil
	}
	p.busyUntil = start + sim.Time(p.cost)
	p.busy += p.cost
	p.events++
	p.env.At(p.busyUntil, fn)
	return enq, start, p.busyUntil
}

// EngineStats reports one engine loop's lifetime counters (§5.7).
type EngineStats struct {
	Events int64
	Busy   time.Duration
}

// Memory-model constants for the §5.7 accounting: a worker engine costs a
// fixed base (runtime, sockets, code) plus per-sub-graph Workflow
// structures (FunctionInfo) and per-live-invocation State objects. The
// base matches the paper's measured ~47 MB engine footprint; the dynamic
// terms are what the paper's "runtime recycling of the memory invocations"
// reclaims at invocation end.
const (
	engineBaseBytes    = 40 << 20
	perNodeStaticBytes = 512 // FunctionInfo: name, successors, addresses
	perNodeStateBytes  = 64  // State: counters + liveness flags
)

// MemoryModel estimates one engine's resident memory given its sub-graph
// size and current live invocations.
func MemoryModel(nodes, liveInvocations int) int64 {
	return engineBaseBytes +
		int64(nodes)*perNodeStaticBytes +
		int64(nodes)*int64(liveInvocations)*perNodeStateBytes
}

// input is one resolved data dependency: the key(s) written by a producing
// task's out-edge, possibly reached through virtual markers. A foreach
// producer of width W writes W replicas, all of which the consumer reads.
type input struct {
	edgeIdx  int
	bytes    int64
	replicas int // producer's data-plane width
}

// output is one task out-edge with its effective consumer set.
type output struct {
	edgeIdx   int
	bytes     int64
	consumers []dag.NodeID // effective consuming tasks
}

// Deployment is one workflow deployed onto the runtime under a placement.
type Deployment struct {
	rt    *Runtime
	bench *workloads.Benchmark
	place map[dag.NodeID]string
	opts  Options

	g        *dag.Graph
	sinks    []dag.NodeID
	sources  []dag.NodeID
	inputs   map[dag.NodeID][]input
	outputs  map[dag.NodeID][]output
	critExec float64
	// conds maps edge index -> compiled switch condition; nodes with any
	// conditional out-edge are runtime switches. A stamped-but-empty
	// condition (not in this map) is the default branch.
	conds         map[int]*expr.Expr
	switchNode    map[dag.NodeID]bool
	condErrors    int64
	crashCount    int64
	retryCount    int64
	timeoutCount  int64
	reissueCount  int64
	replaceCount  int64
	failedInv     int64
	deadlineCount int64
	shedCount     int64
	nodeOrder     []string // sorted runtime node IDs, for deterministic re-placement
	// exhausted records every executor that burned its whole fault
	// re-issue budget, for FailureStats and the gateway failures surface.
	exhausted []ErrReissuesExhausted
	// avoid, when set, excludes workers from fault re-placement (e.g.
	// nodes inside a scheduled NodeDown window that have not failed yet).
	avoid func(worker string) bool

	// Federation state (zero unless SetFence installs an ownership check).
	// engineID names this engine in the federation's membership table;
	// fence is consulted at dispatch, executor phase boundaries, and (via
	// cluster.AcquireOptions.Fence) container grants — a rejection means
	// this engine lost the invocation's shard and must stand down.
	engineID       string
	fence          func(inv int64) error
	fencedSteps    int64 // engine-side fence rejections (dispatch/phase boundaries)
	fencedAcquires int64 // container acquires rejected with cluster.ErrFenced
	adopted        int64 // invocations adopted from a claimed shard

	// Durable-execution state (nil/zero unless Options.Journal is set).
	jr        *journal.WAL
	down      bool
	crashedAt sim.Time
	// liveInvs tracks in-flight invocations by ID so a restart can replay
	// them from the journal.
	liveInvs map[int64]*invocation
	// reexec guards producer re-execution (lost-input recovery): one
	// re-run per (invocation, node) at a time, with waiters coalesced.
	reexec        map[reexecKey][]func()
	engineCrashes int64
	replaySkips   int64
	redispatched  int64
	lostInputs    int64
	reexecCount   int64

	// Fast-path state (zero unless Options.FastPath enables a feature).
	// fastSpans switches the executor from one aggregate "store" span to
	// per-operation spans, so direct pushes attribute as CompDirect.
	fastSpans bool
	// memo records (function, input hash) keys whose outputs have been
	// produced at least once; hits replay the outputs without executing.
	memo             map[uint64]bool
	memoHits         int64
	memoMisses       int64
	directPushes     int64
	directFallbacks  int64
	prewarmIssued    int64
	prewarmHits      int64
	prewarmCancelled int64

	master  *proc
	workers map[string]*proc
	tracer  *Tracer
	obs     *obs.Bus

	nextInv  int64
	liveNow  int
	peakLive int
	version  int // red-black deployment version
	// liveByVersion counts in-flight invocations per deployment version so
	// out-of-date versions can be recycled once drained.
	liveByVersion map[int]int
}

// NewDeployment validates and precomputes a workflow deployment. place must
// assign every graph node to a runtime worker node.
func NewDeployment(rt *Runtime, bench *workloads.Benchmark, place map[dag.NodeID]string, opts Options) (*Deployment, error) {
	if err := bench.Validate(); err != nil {
		return nil, err
	}
	g := bench.Graph
	for _, n := range g.Nodes() {
		w, ok := place[n.ID]
		if !ok {
			return nil, fmt.Errorf("engine: node %q has no placement", n.Name)
		}
		if _, ok := rt.Nodes[w]; !ok {
			return nil, fmt.Errorf("engine: node %q placed on unknown worker %q", n.Name, w)
		}
	}
	d := &Deployment{
		rt:            rt,
		bench:         bench,
		place:         place,
		opts:          opts.withDefaults(),
		g:             g,
		sinks:         g.Sinks(),
		sources:       g.Sources(),
		inputs:        map[dag.NodeID][]input{},
		outputs:       map[dag.NodeID][]output{},
		master:        &proc{env: rt.Env, cost: opts.withDefaults().MasterProc},
		workers:       map[string]*proc{},
		liveByVersion: map[int]int{},
	}
	if d.opts.Journal != nil {
		d.jr = d.opts.Journal
		d.liveInvs = map[int64]*invocation{}
		d.reexec = map[reexecKey][]func(){}
	}
	if d.opts.FastPath.Memoize {
		d.memo = map[uint64]bool{}
	}
	d.fastSpans = d.opts.FastPath.DirectPassing || d.opts.FastPath.Memoize
	for w := range rt.Nodes {
		d.workers[w] = &proc{env: rt.Env, cost: d.opts.WorkerProc}
		d.nodeOrder = append(d.nodeOrder, w)
	}
	sort.Strings(d.nodeOrder)
	d.conds = map[int]*expr.Expr{}
	d.switchNode = map[dag.NodeID]bool{}
	for i, e := range g.Edges() {
		if e.Cond == "" {
			continue
		}
		compiled, err := expr.Compile(e.Cond)
		if err != nil {
			return nil, fmt.Errorf("engine: edge %d condition: %w", i, err)
		}
		d.conds[i] = compiled
		d.switchNode[e.From] = true
	}
	d.resolveDataflow()
	_, d.critExec, _ = g.CriticalPath(func(n dag.Node) float64 {
		if n.Kind != dag.KindTask {
			return 0
		}
		return bench.Functions[n.Function].ExecSeconds
	})
	return d, nil
}

// resolveDataflow computes, for every task, which edge keys it reads and
// which it writes — resolving through virtual markers: a task consuming
// from a virtual node actually reads the keys written by the tasks
// upstream of that marker, and a task writing toward a virtual node serves
// every task downstream of it.
func (d *Deployment) resolveDataflow() {
	edges := d.g.Edges()
	// taskConsumers finds the effective consuming tasks past node x.
	var taskConsumers func(x dag.NodeID, seen map[dag.NodeID]bool) []dag.NodeID
	taskConsumers = func(x dag.NodeID, seen map[dag.NodeID]bool) []dag.NodeID {
		if d.g.Node(x).Kind == dag.KindTask {
			return []dag.NodeID{x}
		}
		var out []dag.NodeID
		for _, s := range d.g.Succs(x) {
			if seen[s] {
				continue
			}
			seen[s] = true
			out = append(out, taskConsumers(s, seen)...)
		}
		return out
	}
	for i, e := range edges {
		if d.g.Node(e.From).Kind != dag.KindTask {
			continue // virtual-out edges signal; data was keyed upstream
		}
		consumers := taskConsumers(e.To, map[dag.NodeID]bool{})
		d.outputs[e.From] = append(d.outputs[e.From], output{
			edgeIdx:   i,
			bytes:     e.Bytes,
			consumers: consumers,
		})
		width := d.g.Node(e.From).Width
		for _, c := range consumers {
			d.inputs[c] = append(d.inputs[c], input{edgeIdx: i, bytes: e.Bytes, replicas: width})
		}
	}
}

// CriticalExecSeconds reports the summed execution time of the critical
// path — the quantity the paper subtracts from end-to-end latency to get
// scheduling overhead (§2.3).
func (d *Deployment) CriticalExecSeconds() float64 { return d.critExec }

// MasterStats reports the master engine loop's counters.
func (d *Deployment) MasterStats() EngineStats {
	return EngineStats{Events: d.master.events, Busy: d.master.busy}
}

// WorkerStats reports a worker engine loop's counters.
func (d *Deployment) WorkerStats(worker string) EngineStats {
	p, ok := d.workers[worker]
	if !ok {
		return EngineStats{}
	}
	return EngineStats{Events: p.events, Busy: p.busy}
}

// Placement returns the node→worker map in use.
func (d *Deployment) Placement() map[dag.NodeID]string { return d.place }

// PeakLiveInvocations reports the maximum concurrent invocations seen.
func (d *Deployment) PeakLiveInvocations() int { return d.peakLive }

// EngineMemory estimates a worker engine's peak resident memory for this
// deployment (paper §5.7): base footprint + Workflow structures for the
// sub-graph nodes placed there + State for the peak live invocations.
func (d *Deployment) EngineMemory(worker string) int64 {
	nodes := 0
	for _, w := range d.place {
		if w == worker {
			nodes++
		}
	}
	return MemoryModel(nodes, d.peakLive)
}

// Redeploy switches to a new placement (red-black: version bumps, new
// invocations use the new sub-graphs, and each old version's warm
// containers are recycled when its in-flight invocations drain — here the
// drain bookkeeping is per-version counts; container recycling happens via
// the pools' keep-alive).
func (d *Deployment) Redeploy(place map[dag.NodeID]string) error {
	for _, n := range d.g.Nodes() {
		w, ok := place[n.ID]
		if !ok {
			return fmt.Errorf("engine: node %q has no placement", n.Name)
		}
		if _, ok := d.rt.Nodes[w]; !ok {
			return fmt.Errorf("engine: node %q placed on unknown worker %q", n.Name, w)
		}
	}
	d.place = place
	d.version++
	return nil
}

// Version reports the current red-black deployment version.
func (d *Deployment) Version() int { return d.version }

// LiveInvocations reports in-flight invocations for a version.
func (d *Deployment) LiveInvocations(version int) int { return d.liveByVersion[version] }

// Result describes one completed invocation.
type Result struct {
	ID      int64
	Start   sim.Time
	End     sim.Time
	Version int
	// Failed reports that at least one executor exhausted its retry
	// budget; downstream work was drained rather than executed.
	Failed bool
	// DeadlineExceeded reports that the invocation's deadline passed while
	// work remained: the rest of the graph was drained without running.
	// Implies Failed.
	DeadlineExceeded bool
}

// Latency reports the end-to-end invocation latency.
func (r Result) Latency() time.Duration { return (r.End - r.Start).Duration() }

// invocation tracks one in-flight workflow run.
type invocation struct {
	id      int64
	version int
	// place aliases the deployment's placement until a fault forces
	// re-placement, at which point it is cloned (ownPlace) so the
	// deployment map stays untouched.
	place     map[dag.NodeID]string
	ownPlace  bool
	start     sim.Time
	args      expr.Env
	deadline  sim.Time // absolute; 0 = none
	tenant    string   // tenant attribution; "" = untenanted
	failed    bool
	deadlined bool
	// abandoned marks an invocation orphaned by an engine crash: every
	// in-flight executor and engine-loop callback holding this object
	// bails out, and a restarted engine resumes the run on a fresh
	// invocation rebuilt from the journal.
	abandoned bool
	predsDone []int
	realIn    []int // non-skipped predecessor completions
	started   []bool
	sinksLeft int
	done      func(Result)
	keys      []string
	// stepSeq counts runTask dispatches per node (durable mode only): the
	// journal's AttemptSeq, surviving replay so attempts stay monotonic.
	stepSeq []int
	// reexecs counts lost-input producer re-executions, bounded by
	// MaxReissues so repeated data loss cannot loop forever.
	reexecs int
	// Fast-path state (nil unless the matching FastPath feature is on).
	// prewarm holds containers acquired ahead of a step's trigger;
	// prewarmed marks producers whose successors were already considered.
	prewarm   map[dag.NodeID]*prewarmSet
	prewarmed []bool
	// chash caches per-node content hashes (0 = not yet computed); the
	// argsH pair caches the invocation-argument fingerprint they mix in.
	chash      []uint64
	argsH      uint64
	argsHashed bool
}

// skippedOutEdges decides which of a completed node's out-edges deliver a
// skip instead of a real state update. Without invocation arguments every
// branch runs (the paper's behaviour: containers are provisioned for all
// switch branches); with arguments, the first branch whose condition holds
// — or the first unconditional default — is taken and the rest skip.
// Evaluation errors skip the branch and are counted.
func (d *Deployment) skippedOutEdges(inv *invocation, id dag.NodeID) map[int]bool {
	if inv.args == nil || !d.switchNode[id] {
		return nil
	}
	skipped := map[int]bool{}
	taken := false
	for _, ei := range d.g.OutEdges(id) {
		compiled, conditional := d.conds[ei]
		if !conditional && d.g.Edges()[ei].Cond == "" {
			// Part of a switch (the node has conditional siblings) with no
			// condition of its own: a default branch.
			if taken {
				skipped[ei] = true
			} else {
				taken = true
			}
			continue
		}
		if taken {
			skipped[ei] = true
			continue
		}
		ok, err := compiled.EvalBool(inv.args)
		if err != nil {
			d.condErrors++
			skipped[ei] = true
			continue
		}
		if ok {
			taken = true
		} else {
			skipped[ei] = true
		}
	}
	return skipped
}

// CondErrors reports how many switch conditions failed to evaluate.
func (d *Deployment) CondErrors() int64 { return d.condErrors }

// execJitter perturbs a task's execution time by ±15%, deterministically
// per (invocation, node): real functions are not clockwork, and the
// variation staggers the transfer bursts that parallel stages emit.
func execJitter(invID int64, node dag.NodeID) float64 {
	r := sim.NewRand(uint64(invID)<<20 ^ uint64(node) ^ 0x9e3779b9)
	return 0.85 + 0.3*r.Float64()
}

func (d *Deployment) key(inv *invocation, edgeIdx, replica int) string {
	return fmt.Sprintf("%s/%d/e%d.%d", d.bench.Name, inv.id, edgeIdx, replica)
}

// Invoke starts one workflow invocation; done fires when every sink has
// completed, after which the invocation's intermediate data is released
// (the paper's per-invocation State cleanup).
func (d *Deployment) Invoke(done func(Result)) {
	d.InvokeArgs(nil, done)
}

// InvokeArgs starts an invocation carrying input arguments; switch steps
// evaluate their branch conditions against them and run only the matching
// branch. With nil args every branch runs.
func (d *Deployment) InvokeArgs(args map[string]any, done func(Result)) {
	d.InvokeOpts(InvokeOptions{Args: args}, done)
}

// InvokeOptions tunes one invocation.
type InvokeOptions struct {
	// Args are the invocation's input arguments (see InvokeArgs).
	Args map[string]any
	// Deadline is the absolute virtual instant after which the invocation's
	// remaining work is cancelled: untriggered steps drain as skips, queued
	// container acquisitions are withdrawn, and in-flight executors abandon
	// at the next phase boundary — no zombie work consumes containers after
	// the client has given up. The invocation still completes (promptly),
	// with Failed and DeadlineExceeded set. 0 = no deadline.
	Deadline sim.Time
	// Tenant attributes the invocation to a tenant for weighted-fair
	// container queueing, per-tenant observability, and federation handoff.
	// "" = untenanted.
	Tenant string
}

// InvokeOpts starts an invocation with per-invocation options.
func (d *Deployment) InvokeOpts(opts InvokeOptions, done func(Result)) {
	d.InvokeWithID(d.nextInv, opts, done)
}

// InvokeWithID starts an invocation under an externally assigned ID — the
// federation routes invocations to owner engines by consistent hashing on
// a globally unique ID, so the ID is allocated above the engine. nextInv
// advances past id, keeping locally assigned IDs collision-free.
func (d *Deployment) InvokeWithID(id int64, opts InvokeOptions, done func(Result)) {
	if done == nil {
		done = func(Result) {}
	}
	var env expr.Env
	if opts.Args != nil {
		env = expr.Env(opts.Args)
	}
	inv := &invocation{
		id:        id,
		version:   d.version,
		place:     d.place,
		start:     d.rt.Env.Now(),
		args:      env,
		deadline:  opts.Deadline,
		tenant:    opts.Tenant,
		predsDone: make([]int, d.g.Len()),
		realIn:    make([]int, d.g.Len()),
		started:   make([]bool, d.g.Len()),
		sinksLeft: len(d.sinks),
		done:      done,
	}
	if id >= d.nextInv {
		d.nextInv = id + 1
	}
	d.liveByVersion[inv.version]++
	d.liveNow++
	if d.liveNow > d.peakLive {
		d.peakLive = d.liveNow
	}
	if d.jr != nil {
		inv.stepSeq = make([]int, d.g.Len())
		d.liveInvs[inv.id] = inv
		if d.down {
			// The engine process is down: the request is durably queued
			// (registered) and dispatches when the engine restarts.
			d.pubInvocation(inv, false)
			return
		}
	}
	d.pubInvocation(inv, false)
	switch d.opts.Mode {
	case ModeWorkerSP:
		d.invokeWorkerSP(inv)
	case ModeMasterSP:
		d.invokeMasterSP(inv)
	default:
		panic(fmt.Sprintf("engine: unknown mode %v", d.opts.Mode))
	}
}

func (d *Deployment) finishInvocation(inv *invocation) {
	d.drainPrewarms(inv)
	if d.jr != nil {
		delete(d.liveInvs, inv.id)
	}
	d.liveByVersion[inv.version]--
	d.liveNow--
	if d.liveByVersion[inv.version] == 0 && inv.version != d.version {
		delete(d.liveByVersion, inv.version) // out-of-date version drained
	}
	for _, k := range inv.keys {
		d.rt.Store.Delete(k)
	}
	if inv.failed {
		d.failedInv++
	}
	d.pubInvocation(inv, true)
	inv.done(Result{
		ID:               inv.id,
		Start:            inv.start,
		End:              d.rt.Env.Now(),
		Version:          inv.version,
		Failed:           inv.failed,
		DeadlineExceeded: inv.deadlined,
	})
}

// deadlineExceeded reports whether inv carries a deadline that has passed.
func (d *Deployment) deadlineExceeded(inv *invocation) bool {
	return inv.deadline > 0 && d.rt.Env.Now() >= inv.deadline
}

// failDeadline marks inv dead-on-deadline at step id (-1 = invocation
// level), counting and publishing the abandonment. The caller then drains
// the step like a skip, so the workflow completes instead of hanging.
func (d *Deployment) failDeadline(inv *invocation, id dag.NodeID, where string) {
	inv.failed = true
	inv.deadlined = true
	d.deadlineCount++
	d.pubDeadline(inv, id, where)
}

// DeadlineExceededCount reports deadline abandonments so far.
func (d *Deployment) DeadlineExceededCount() int64 { return d.deadlineCount }

// LiveNow reports invocations currently in flight across all versions.
func (d *Deployment) LiveNow() int { return d.liveNow }

// ---------------------------------------------------------------------------
// Task body shared by both patterns: container acquire → input fetch →
// execute → output store → release.

// runTask executes one control-plane node. A plain task is one container
// acquire → input fetch → execute → output store → release. A foreach node
// of width W maps to W data-plane executors (the paper's Map(v)): each
// acquires its own container, fetches the full inputs, executes once, and
// writes its own output replica; the node completes when all executors do.
func (d *Deployment) runTask(inv *invocation, id dag.NodeID, onDone func(failed bool)) {
	node := d.g.Node(id)
	if node.Kind == dag.KindVirtual {
		// Virtual markers complete instantly; they exist for atomicity and
		// trigger bookkeeping only.
		d.rt.Env.Schedule(0, func() { onDone(false) })
		return
	}
	width := node.Width
	pending := width
	anyFailed := false
	complete := onDone
	if d.jr != nil {
		inv.stepSeq[id]++
		attemptSeq := inv.stepSeq[id]
		complete = func(failed bool) {
			if failed {
				onDone(true)
				return
			}
			d.commitStep(inv, id, attemptSeq, onDone)
		}
	}
	if d.opts.FastPath.Memoize {
		mkey := d.contentHash(inv, id)
		if d.memo[mkey] {
			// A hit replays the step's outputs without acquiring a container
			// or executing; in durable mode `complete` still routes through
			// commitStep, so crash replay skips the step like any other.
			d.memoHits++
			d.runMemoHit(inv, id, complete)
			return
		}
		d.memoMisses++
		inner := complete
		complete = func(failed bool) {
			if !failed && !inv.abandoned && !inv.deadlined {
				d.memo[mkey] = true
			}
			inner(failed)
		}
	}
	for replica := 0; replica < width; replica++ {
		st := &execState{}
		d.startAttempt(inv, id, replica, 1, 0, st, func(failed bool) {
			if failed {
				anyFailed = true
			}
			pending--
			if pending == 0 {
				complete(anyFailed)
			}
		})
	}
}

// crashes decides deterministically whether this attempt fails. The seed
// mixes the full (invocation, node, replica, attempt) tuple through
// splitmix rounds so nearby tuples — high attempt counts, wide foreach
// fan-outs — never collide or correlate.
func (d *Deployment) crashes(inv *invocation, id dag.NodeID, replica, attempt int) bool {
	if d.opts.FailureRate <= 0 {
		return false
	}
	seed := sim.Mix(uint64(inv.id), uint64(id), uint64(replica), uint64(attempt), 0xdeadbeef)
	r := sim.NewRand(seed)
	return r.Float64() < d.opts.FailureRate
}

// Crashes reports injected container crashes so far.
func (d *Deployment) Crashes() int64 { return d.crashCount }

// Retries reports executor retry attempts so far.
func (d *Deployment) Retries() int64 { return d.retryCount }

// ErrReissuesExhausted reports an executor that burned its entire fault
// re-issue budget: the step failed permanently and the invocation drained
// with Failed set. It is an error so callers (gateway, tests) can match it
// with errors.As; FailureStats.Exhausted carries one per exhausted step.
type ErrReissuesExhausted struct {
	Workflow string `json:"workflow"`
	Inv      int64  `json:"inv"`
	Step     string `json:"step"`
	Attempts int    `json:"attempts"` // re-issues spent before giving up (== MaxReissues)
}

func (e *ErrReissuesExhausted) Error() string {
	return fmt.Sprintf("engine: step %q of %s invocation %d exhausted its re-issue budget after %d attempts",
		e.Step, e.Workflow, e.Inv, e.Attempts)
}

// FailureStats aggregates the deployment's failure and recovery counters.
type FailureStats struct {
	Crashes           int64 // injected container crashes
	Retries           int64 // crash-budget retries
	Timeouts          int64 // executor attempts abandoned by the task timeout
	Reissues          int64 // fault-driven re-issues (timeouts + node deaths)
	Replacements      int64 // tasks re-placed off dead nodes
	FailedInvocations int64 // invocations that completed with Failed set
	DeadlineExceeded  int64 // work abandoned at the invocation deadline
	Shed              int64 // executor acquisitions rejected by bounded queues
	// ReissuesExhausted counts executors that burned the whole re-issue
	// budget; Exhausted carries the typed record for each (step name,
	// attempt count), in failure order.
	ReissuesExhausted int64
	Exhausted         []ErrReissuesExhausted
}

// FailureStatsSnapshot reports current failure/recovery counters.
func (d *Deployment) FailureStatsSnapshot() FailureStats {
	exhausted := make([]ErrReissuesExhausted, len(d.exhausted))
	copy(exhausted, d.exhausted)
	return FailureStats{
		Crashes:           d.crashCount,
		Retries:           d.retryCount,
		Timeouts:          d.timeoutCount,
		Reissues:          d.reissueCount,
		Replacements:      d.replaceCount,
		FailedInvocations: d.failedInv,
		DeadlineExceeded:  d.deadlineCount,
		Shed:              d.shedCount,
		ReissuesExhausted: int64(len(d.exhausted)),
		Exhausted:         exhausted,
	}
}

// fetchInputs downloads the task's input keys one after another: a single
// container's runtime fetches its inputs sequentially, which is what keeps
// the aggregate store load linear in bytes rather than quadratic in
// concurrent edges. Concurrency across containers is still unbounded.
func (d *Deployment) fetchInputs(inv *invocation, id dag.NodeID, workerID string, next func()) {
	if d.opts.Data == DataNone {
		next()
		return
	}
	ins := d.inputs[id]
	i, rep := 0, 0
	var step func()
	step = func() {
		// A dead deadline (or an engine crash) stops issuing further input
		// fetches; the caller's post-fetch checks abandon the attempt.
		if i == len(ins) || d.deadlineExceeded(inv) || inv.abandoned {
			next()
			return
		}
		in := ins[i]
		k := d.key(inv, in.edgeIdx, rep)
		advance := func() {
			rep++
			if rep >= in.replicas {
				i++
				rep = 0
			}
			step()
		}
		// Breaker fast-fails and misses alike continue the chain: a missing
		// input is the modeled runtime's problem, not the scheduler's, and
		// the fast-fail already bought the latency win. Durable mode is the
		// exception — a clean miss there means a node death lost the
		// producer's only copy, so the producer re-executes (its commit is
		// idempotent) and the fetch retries once before moving on.
		d.rt.Store.Get(workerID, k, func(_ int64, ok bool, err error) {
			if d.jr != nil && !ok && err == nil && !inv.abandoned &&
				inv.reexecs < d.opts.MaxReissues {
				producer := d.g.Edges()[in.edgeIdx].From
				inv.reexecs++
				d.lostInputs++
				d.reexecProducer(inv, producer, func() {
					d.rt.Store.Get(workerID, k, func(int64, bool, error) { advance() })
				})
				return
			}
			advance()
		})
	}
	step()
}

// storeOutputs uploads the task's output keys sequentially (one container,
// one upload stream), choosing per edge between local memory and the
// remote store based on the consumers' placement. With direct passing
// enabled, an edge whose consumer placement is known (and healthy, and not
// owed a replicated durable copy) is pushed straight into the consumer
// workers' memory tiers instead; the store hop remains the fallback.
func (d *Deployment) storeOutputs(inv *invocation, id dag.NodeID, replica int, workerID string, next func()) {
	if d.opts.Data == DataNone {
		next()
		return
	}
	outs := d.outputs[id]
	i := 0
	var step func()
	step = func() {
		// A dead deadline (or an engine crash) stops issuing further output
		// puts; downstream consumers drain as skips / are re-dispatched by
		// replay and never depend on the missing keys.
		if i == len(outs) || d.deadlineExceeded(inv) || inv.abandoned {
			next()
			return
		}
		out := outs[i]
		i++
		consumers := make([]string, len(out.consumers))
		for j, c := range out.consumers {
			consumers[j] = inv.place[c]
		}
		k := d.key(inv, out.edgeIdx, replica)
		inv.keys = append(inv.keys, k)
		opStart := d.rt.Env.Now()
		if targets := d.directTargets(inv, out); targets != nil {
			if d.rt.Store.PushDirect(workerID, k, out.bytes, targets, func() {
				d.span(inv, id, replica, "direct", opStart)
				step()
			}) {
				d.directPushes++
				return
			}
			d.directFallbacks++
		}
		d.rt.Store.Put(workerID, k, out.bytes, consumers, func(store.Location, error) {
			if d.fastSpans {
				d.span(inv, id, replica, "store", opStart)
			}
			step()
		})
	}
	step()
}
