package engine

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dag"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/workloads"
)

// rig builds a runtime with nWorkers workers plus a master/storage node.
func rig(nWorkers int, storageBW network.Bandwidth) *Runtime {
	env := sim.NewEnv()
	fab := network.New(env, network.DefaultConfig())
	fab.AddNode("master", storageBW, storageBW)
	nodes := map[string]*cluster.Node{}
	mems := map[string]*store.MemKV{}
	for i := 0; i < nWorkers; i++ {
		id := fmt.Sprintf("w%d", i)
		fab.AddNode(id, network.MBps(100), network.MBps(100))
		nodes[id] = cluster.NewNode(env, id, cluster.DefaultConfig())
		mems[id] = store.NewMemKV(env, id, 8<<30)
	}
	remote := store.NewRemoteKV(env, fab, "master", time.Millisecond)
	return &Runtime{
		Env:    env,
		Fabric: fab,
		Nodes:  nodes,
		Store:  store.NewHybrid(remote, mems, false),
		Master: "master",
	}
}

// miniBench is a 4-node diamond: a -> {b, c} -> d with 1 MB payloads.
func miniBench() *workloads.Benchmark {
	g := dag.New("mini")
	a := g.AddTask("a", "fa")
	b := g.AddTask("b", "fb")
	c := g.AddTask("c", "fc")
	e := g.AddTask("d", "fd")
	g.Connect(a, b, 1<<20)
	g.Connect(a, c, 1<<20)
	g.Connect(b, e, 1<<20)
	g.Connect(c, e, 1<<20)
	fns := map[string]workloads.FunctionSpec{}
	for _, n := range []string{"fa", "fb", "fc", "fd"} {
		fns[n] = workloads.FunctionSpec{Name: n, ExecSeconds: 0.1, MemPeak: 64 << 20}
	}
	return &workloads.Benchmark{Name: "mini", Graph: g, Functions: fns, MonolithicBytes: 1 << 20}
}

// virtBench has a parallel step bracketed by virtual markers:
// a -> vs -> {b, c} -> ve -> d. Data must resolve through the markers.
func virtBench() *workloads.Benchmark {
	g := dag.New("virt")
	a := g.AddTask("a", "fa")
	vs := g.AddVirtual("p:start")
	b := g.AddTask("b", "fb")
	c := g.AddTask("c", "fc")
	ve := g.AddVirtual("p:end")
	e := g.AddTask("d", "fd")
	g.Connect(a, vs, 1<<20)
	g.Connect(vs, b, 1<<20)
	g.Connect(vs, c, 1<<20)
	g.Connect(b, ve, 2<<20)
	g.Connect(c, ve, 2<<20)
	g.Connect(ve, e, 4<<20)
	fns := map[string]workloads.FunctionSpec{}
	for _, n := range []string{"fa", "fb", "fc", "fd"} {
		fns[n] = workloads.FunctionSpec{Name: n, ExecSeconds: 0.05, MemPeak: 64 << 20}
	}
	return &workloads.Benchmark{Name: "virt", Graph: g, Functions: fns, MonolithicBytes: 1 << 20}
}

func placeAll(b *workloads.Benchmark, worker string) map[dag.NodeID]string {
	p := map[dag.NodeID]string{}
	for _, n := range b.Graph.Nodes() {
		p[n.ID] = worker
	}
	return p
}

func placeRoundRobin(b *workloads.Benchmark, workers ...string) map[dag.NodeID]string {
	p := map[dag.NodeID]string{}
	for i, n := range b.Graph.Nodes() {
		p[n.ID] = workers[i%len(workers)]
	}
	return p
}

func run(t *testing.T, rt *Runtime, d *Deployment) Result {
	t.Helper()
	var res Result
	got := false
	d.Invoke(func(r Result) { res = r; got = true })
	rt.Env.Run()
	if !got {
		t.Fatal("invocation never completed")
	}
	return res
}

func TestWorkerSPCompletes(t *testing.T) {
	rt := rig(2, network.MBps(50))
	b := miniBench()
	d, err := NewDeployment(rt, b, placeRoundRobin(b, "w0", "w1"), Options{Mode: ModeWorkerSP, Data: DataStore})
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, rt, d)
	if res.Latency() <= 0 {
		t.Fatal("non-positive latency")
	}
	// Latency must be at least the critical execution time (0.3s for the
	// diamond: a+b+d).
	if res.Latency().Seconds() < d.CriticalExecSeconds() {
		t.Fatalf("latency %v < critical exec %v", res.Latency(), d.CriticalExecSeconds())
	}
}

func TestMasterSPCompletes(t *testing.T) {
	rt := rig(2, network.MBps(50))
	b := miniBench()
	d, err := NewDeployment(rt, b, placeRoundRobin(b, "w0", "w1"), Options{Mode: ModeMasterSP, Data: DataStore})
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, rt, d)
	if res.Latency().Seconds() < d.CriticalExecSeconds() {
		t.Fatalf("latency %v < critical exec %v", res.Latency(), d.CriticalExecSeconds())
	}
}

// The paper's core claim (Fig 11): WorkerSP scheduling overhead is well
// below MasterSP's on the same workload and placement.
func TestWorkerSPBeatsMasterSPOnOverhead(t *testing.T) {
	for _, bench := range []*workloads.Benchmark{miniBench(), workloads.Epigenomics()} {
		overhead := func(mode Mode) float64 {
			rt := rig(7, network.MBps(50))
			workers := make([]string, 7)
			for i := range workers {
				workers[i] = fmt.Sprintf("w%d", i)
			}
			d, err := NewDeployment(rt, bench, placeRoundRobin(bench, workers...), Options{Mode: mode, Data: DataNone})
			if err != nil {
				t.Fatal(err)
			}
			// Warm up containers once, then measure.
			run(t, rt, d)
			res := run(t, rt, d)
			return res.Latency().Seconds() - d.CriticalExecSeconds()
		}
		w, m := overhead(ModeWorkerSP), overhead(ModeMasterSP)
		if w <= 0 || m <= 0 {
			t.Fatalf("%s: non-positive overheads w=%v m=%v", bench.Name, w, m)
		}
		if w >= m {
			t.Errorf("%s: WorkerSP overhead %.3fs >= MasterSP %.3fs", bench.Name, w, m)
		}
	}
}

func TestDataGCAfterInvocation(t *testing.T) {
	rt := rig(2, network.MBps(50))
	b := miniBench()
	d, err := NewDeployment(rt, b, placeRoundRobin(b, "w0", "w1"), Options{Mode: ModeWorkerSP, Data: DataStore})
	if err != nil {
		t.Fatal(err)
	}
	run(t, rt, d)
	if n := rt.Store.Remote().Len(); n != 0 {
		t.Fatalf("%d keys leaked in remote store", n)
	}
	for _, w := range []string{"w0", "w1"} {
		if rt.Store.Mem(w).Used() != 0 {
			t.Fatalf("worker %s memory not reclaimed: %d", w, rt.Store.Mem(w).Used())
		}
	}
}

func TestCoLocatedPlacementUsesLocalMemory(t *testing.T) {
	rt := rig(2, network.MBps(50))
	b := miniBench()
	d, err := NewDeployment(rt, b, placeAll(b, "w0"), Options{Mode: ModeWorkerSP, Data: DataStore})
	if err != nil {
		t.Fatal(err)
	}
	run(t, rt, d)
	if hits := rt.Store.LocalHits(); hits != 4 {
		t.Fatalf("local hits = %d, want 4 (all edges local)", hits)
	}
	if st := rt.Store.Remote().Stats(); st.Puts != 0 {
		t.Fatalf("remote puts = %d, want 0", st.Puts)
	}
}

func TestCrossWorkerPlacementUsesRemote(t *testing.T) {
	rt := rig(2, network.MBps(50))
	b := miniBench()
	d, err := NewDeployment(rt, b, placeRoundRobin(b, "w0", "w1"), Options{Mode: ModeWorkerSP, Data: DataStore})
	if err != nil {
		t.Fatal(err)
	}
	run(t, rt, d)
	if st := rt.Store.Remote().Stats(); st.Puts == 0 || st.Gets == 0 {
		t.Fatalf("remote unused despite cross-worker edges: %+v", st)
	}
}

func TestLocalPlacementIsFasterWithData(t *testing.T) {
	lat := func(place map[dag.NodeID]string) float64 {
		rt := rig(2, network.MBps(25))
		b := VideoLike()
		d, err := NewDeployment(rt, b, place, Options{Mode: ModeWorkerSP, Data: DataStore})
		if err != nil {
			t.Fatal(err)
		}
		run(t, rt, d) // warm
		return run(t, rt, d).Latency().Seconds()
	}
	b := VideoLike()
	local := lat(placeAll(b, "w0"))
	spread := lat(placeRoundRobin(b, "w0", "w1"))
	if local >= spread {
		t.Fatalf("co-located latency %.3fs >= spread %.3fs; FaaStore gain missing", local, spread)
	}
}

// VideoLike is a small fan-out benchmark with meaningful payloads used by
// locality tests (exported for reuse in harness tests).
func VideoLike() *workloads.Benchmark {
	g := dag.New("vidlike")
	src := g.AddTask("src", "f0")
	sink := g.AddTask("sink", "f2")
	for i := 0; i < 4; i++ {
		mid := g.AddTask(fmt.Sprintf("m%d", i), "f1")
		g.Connect(src, mid, 8<<20)
		g.Connect(mid, sink, 4<<20)
	}
	fns := map[string]workloads.FunctionSpec{
		"f0": {Name: "f0", ExecSeconds: 0.05, MemPeak: 64 << 20},
		"f1": {Name: "f1", ExecSeconds: 0.1, MemPeak: 64 << 20},
		"f2": {Name: "f2", ExecSeconds: 0.05, MemPeak: 64 << 20},
	}
	return &workloads.Benchmark{Name: "vidlike", Graph: g, Functions: fns, MonolithicBytes: 8 << 20}
}

func TestVirtualNodesResolveDataflow(t *testing.T) {
	rt := rig(1, network.MBps(50))
	b := virtBench()
	d, err := NewDeployment(rt, b, placeAll(b, "w0"), Options{Mode: ModeWorkerSP, Data: DataStore})
	if err != nil {
		t.Fatal(err)
	}
	// b and c must each read a's key (through vs); d must read both b's
	// and c's keys (through ve).
	aID, bID, cID, dID := dag.NodeID(0), dag.NodeID(2), dag.NodeID(3), dag.NodeID(5)
	if len(d.inputs[bID]) != 1 || len(d.inputs[cID]) != 1 {
		t.Fatalf("branch inputs = %d/%d, want 1/1", len(d.inputs[bID]), len(d.inputs[cID]))
	}
	if len(d.inputs[dID]) != 2 {
		t.Fatalf("join inputs = %d, want 2", len(d.inputs[dID]))
	}
	if len(d.outputs[aID]) != 1 || len(d.outputs[aID][0].consumers) != 2 {
		t.Fatalf("a outputs = %+v, want 1 edge with 2 consumers", d.outputs[aID])
	}
	res := run(t, rt, d)
	if res.Latency() <= 0 {
		t.Fatal("virtual-marker workflow did not complete")
	}
	if rt.Store.Remote().Len() != 0 {
		t.Fatal("keys leaked")
	}
}

func TestVirtualBenchBothModes(t *testing.T) {
	for _, mode := range []Mode{ModeWorkerSP, ModeMasterSP} {
		rt := rig(3, network.MBps(50))
		b := virtBench()
		d, err := NewDeployment(rt, b, placeRoundRobin(b, "w0", "w1", "w2"), Options{Mode: mode, Data: DataStore})
		if err != nil {
			t.Fatal(err)
		}
		res := run(t, rt, d)
		if res.Latency() <= 0 {
			t.Fatalf("%v: did not complete", mode)
		}
	}
}

func TestConcurrentInvocations(t *testing.T) {
	rt := rig(2, network.MBps(50))
	b := miniBench()
	d, err := NewDeployment(rt, b, placeRoundRobin(b, "w0", "w1"), Options{Mode: ModeWorkerSP, Data: DataStore})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	completed := 0
	ids := map[int64]bool{}
	for i := 0; i < n; i++ {
		i := i
		rt.Env.Schedule(time.Duration(i)*100*time.Millisecond, func() {
			d.Invoke(func(r Result) {
				completed++
				if ids[r.ID] {
					t.Errorf("duplicate invocation ID %d", r.ID)
				}
				ids[r.ID] = true
			})
		})
	}
	rt.Env.Run()
	if completed != n {
		t.Fatalf("completed = %d, want %d", completed, n)
	}
	if rt.Store.Remote().Len() != 0 {
		t.Fatal("keys leaked across concurrent invocations")
	}
}

func TestAllPaperBenchmarksCompleteBothModes(t *testing.T) {
	workers := make([]string, 7)
	for i := range workers {
		workers[i] = fmt.Sprintf("w%d", i)
	}
	for _, b := range workloads.All() {
		for _, mode := range []Mode{ModeWorkerSP, ModeMasterSP} {
			rt := rig(7, network.MBps(50))
			d, err := NewDeployment(rt, b, placeRoundRobin(b, workers...), Options{Mode: mode, Data: DataStore})
			if err != nil {
				t.Fatalf("%s/%v: %v", b.Name, mode, err)
			}
			res := run(t, rt, d)
			if res.Latency().Seconds() < d.CriticalExecSeconds() {
				t.Errorf("%s/%v: latency %.2fs below critical exec %.2fs",
					b.Name, mode, res.Latency().Seconds(), d.CriticalExecSeconds())
			}
		}
	}
}

func TestRedeployVersioning(t *testing.T) {
	rt := rig(2, network.MBps(50))
	b := miniBench()
	d, err := NewDeployment(rt, b, placeAll(b, "w0"), Options{Mode: ModeWorkerSP, Data: DataNone})
	if err != nil {
		t.Fatal(err)
	}
	var v0, v1 int
	d.Invoke(func(r Result) { v0 = r.Version })
	if err := d.Redeploy(placeAll(b, "w1")); err != nil {
		t.Fatal(err)
	}
	d.Invoke(func(r Result) { v1 = r.Version })
	rt.Env.Run()
	if v0 != 0 || v1 != 1 {
		t.Fatalf("versions = %d/%d, want 0/1", v0, v1)
	}
	if d.Version() != 1 {
		t.Fatalf("Version = %d", d.Version())
	}
	if d.LiveInvocations(0) != 0 {
		t.Fatal("old version not drained")
	}
}

func TestRedeployRejectsBadPlacement(t *testing.T) {
	rt := rig(1, network.MBps(50))
	b := miniBench()
	d, err := NewDeployment(rt, b, placeAll(b, "w0"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Redeploy(map[dag.NodeID]string{}); err == nil {
		t.Error("empty placement accepted")
	}
	if err := d.Redeploy(placeAll(b, "ghost")); err == nil {
		t.Error("unknown worker accepted")
	}
}

func TestNewDeploymentErrors(t *testing.T) {
	rt := rig(1, network.MBps(50))
	b := miniBench()
	if _, err := NewDeployment(rt, b, map[dag.NodeID]string{}, Options{}); err == nil {
		t.Error("missing placement accepted")
	}
	if _, err := NewDeployment(rt, b, placeAll(b, "nope"), Options{}); err == nil {
		t.Error("unknown worker accepted")
	}
}

func TestEngineStatsAccumulate(t *testing.T) {
	rt := rig(2, network.MBps(50))
	b := miniBench()
	d, err := NewDeployment(rt, b, placeRoundRobin(b, "w0", "w1"), Options{Mode: ModeWorkerSP, Data: DataNone})
	if err != nil {
		t.Fatal(err)
	}
	run(t, rt, d)
	ms := d.MasterStats()
	if ms.Events == 0 || ms.Busy == 0 {
		t.Fatalf("master stats empty: %+v", ms)
	}
	ws := d.WorkerStats("w0")
	if ws.Events == 0 {
		t.Fatalf("worker stats empty: %+v", ws)
	}
	if d.WorkerStats("ghost").Events != 0 {
		t.Fatal("unknown worker returned stats")
	}
	// WorkerSP should put more events on workers than on the master.
	totalWorker := d.WorkerStats("w0").Events + d.WorkerStats("w1").Events
	if totalWorker <= ms.Events {
		t.Fatalf("WorkerSP worker events %d <= master events %d", totalWorker, ms.Events)
	}
}

func TestMasterSPSerializesAtMaster(t *testing.T) {
	rt := rig(7, network.MBps(50))
	b := workloads.Cycles()
	workers := make([]string, 7)
	for i := range workers {
		workers[i] = fmt.Sprintf("w%d", i)
	}
	d, err := NewDeployment(rt, b, placeRoundRobin(b, workers...), Options{Mode: ModeMasterSP, Data: DataNone})
	if err != nil {
		t.Fatal(err)
	}
	run(t, rt, d)
	ms := d.MasterStats()
	// Every task produces at least two master events (assign context +
	// completion); 50 tasks -> >= 100.
	if ms.Events < 100 {
		t.Fatalf("master events = %d, want >= 100 for a 50-node DAG", ms.Events)
	}
}

func TestModeString(t *testing.T) {
	if ModeWorkerSP.String() != "WorkerSP" || ModeMasterSP.String() != "MasterSP" {
		t.Fatal("mode strings wrong")
	}
	if Mode(7).String() != "Mode(7)" {
		t.Fatal("unknown mode string wrong")
	}
}

func BenchmarkInvokeWorkerSPEpi(b *testing.B) {
	bench := workloads.Epigenomics()
	workers := []string{"w0", "w1", "w2", "w3", "w4", "w5", "w6"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt := rig(7, network.MBps(50))
		d, err := NewDeployment(rt, bench, placeRoundRobin(bench, workers...), Options{Mode: ModeWorkerSP, Data: DataStore})
		if err != nil {
			b.Fatal(err)
		}
		d.Invoke(nil)
		rt.Env.Run()
	}
}

func TestMasterProcKnobScalesOverhead(t *testing.T) {
	overhead := func(proc time.Duration) float64 {
		rt := rig(4, network.MBps(50))
		b := workloads.Epigenomics()
		d, err := NewDeployment(rt, b, placeRoundRobin(b, "w0", "w1", "w2", "w3"),
			Options{Mode: ModeMasterSP, Data: DataNone, MasterProc: proc, NoJitter: true})
		if err != nil {
			t.Fatal(err)
		}
		// Chain warmup + measurement in one event-queue lifetime so warm
		// containers survive (draining the queue fires keep-alive expiry).
		var res Result
		d.Invoke(func(Result) {
			d.Invoke(func(r Result) { res = r })
		})
		rt.Env.Run()
		return res.Latency().Seconds() - d.CriticalExecSeconds()
	}
	slow, fast := overhead(20*time.Millisecond), overhead(2*time.Millisecond)
	// Only master events that block the critical path scale with the knob
	// (the rest overlap with execution), so assert a clear additive gap:
	// ~20 serialized events x 18ms extra each is ~0.35s.
	if slow < fast+0.2 {
		t.Fatalf("20ms master proc overhead %.3fs not clearly above 2ms overhead %.3fs", slow, fast)
	}
}

func TestDataStoreCostsMoreThanDataNone(t *testing.T) {
	lat := func(data DataMode) float64 {
		rt := rig(2, network.MBps(50))
		b := VideoLike()
		d, err := NewDeployment(rt, b, placeRoundRobin(b, "w0", "w1"),
			Options{Mode: ModeWorkerSP, Data: data, NoJitter: true})
		if err != nil {
			t.Fatal(err)
		}
		run(t, rt, d)
		return run(t, rt, d).Latency().Seconds()
	}
	withData, without := lat(DataStore), lat(DataNone)
	if withData <= without {
		t.Fatalf("DataStore latency %.3fs not above DataNone %.3fs", withData, without)
	}
}
