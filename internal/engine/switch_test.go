package engine

import (
	"testing"

	"repro/internal/dag"
	"repro/internal/network"
	"repro/internal/workloads"
)

// switchBench builds: src -> sw:start -(cond)-> {hd, sd} -> sw:end -> out,
// with hd taken when $q > 720 and sd as the else branch.
func switchBench() *workloads.Benchmark {
	g := dag.New("sw")
	src := g.AddTask("src", "fsrc")
	vs := g.AddVirtual("sw:start")
	hd := g.AddTask("hd", "fhd")
	sd := g.AddTask("sd", "fsd")
	ve := g.AddVirtual("sw:end")
	out := g.AddTask("out", "fout")
	g.Connect(src, vs, 1<<20)
	g.Connect(vs, hd, 1<<20)
	g.Connect(vs, sd, 1<<20)
	g.Connect(hd, ve, 1<<20)
	g.Connect(sd, ve, 1<<20)
	g.Connect(ve, out, 1<<20)
	// Stamp conditions on the branch-entry edges (what the WDL compiler
	// does for switch steps).
	for i, e := range g.Edges() {
		if e.From == vs && e.To == hd {
			g.SetEdgeCond(i, "$q > 720")
		}
		if e.From == vs && e.To == sd {
			g.SetEdgeCond(i, "$q <= 720")
		}
	}
	fns := map[string]workloads.FunctionSpec{}
	for _, n := range []string{"fsrc", "fhd", "fsd", "fout"} {
		fns[n] = workloads.FunctionSpec{Name: n, ExecSeconds: 0.1, MemPeak: 64 << 20}
	}
	return &workloads.Benchmark{Name: "sw", Graph: g, Functions: fns, MonolithicBytes: 1}
}

func switchRig(t *testing.T, mode Mode) (*Runtime, *Deployment) {
	t.Helper()
	rt := rig(2, network.MBps(50))
	b := switchBench()
	d, err := NewDeployment(rt, b, placeRoundRobin(b, "w0", "w1"), Options{Mode: mode, Data: DataStore})
	if err != nil {
		t.Fatal(err)
	}
	return rt, d
}

func coldStarts(rt *Runtime) map[string]int64 {
	out := map[string]int64{}
	for id, n := range rt.Nodes {
		out[id] = n.Stats().ColdStarts
	}
	return out
}

func totalColds(rt *Runtime) int64 {
	var sum int64
	for _, n := range rt.Nodes {
		sum += n.Stats().ColdStarts
	}
	return sum
}

func TestSwitchTakesMatchingBranchOnly(t *testing.T) {
	for _, mode := range []Mode{ModeWorkerSP, ModeMasterSP} {
		rt, d := switchRig(t, mode)
		completed := false
		d.InvokeArgs(map[string]any{"q": 1080.0}, func(r Result) { completed = true })
		rt.Env.Run()
		if !completed {
			t.Fatalf("%v: switch invocation never completed", mode)
		}
		// Only src, hd, out should have executed: 3 cold starts, not 4.
		if got := totalColds(rt); got != 3 {
			t.Fatalf("%v: %d cold starts, want 3 (sd skipped)", mode, got)
		}
		if d.CondErrors() != 0 {
			t.Fatalf("%v: cond errors = %d", mode, d.CondErrors())
		}
	}
}

func TestSwitchElseBranch(t *testing.T) {
	rt, d := switchRig(t, ModeWorkerSP)
	done := false
	d.InvokeArgs(map[string]any{"q": 480.0}, func(Result) { done = true })
	rt.Env.Run()
	if !done {
		t.Fatal("else-branch invocation never completed")
	}
	if got := totalColds(rt); got != 3 {
		t.Fatalf("%d cold starts, want 3 (hd skipped)", got)
	}
}

func TestSwitchWithoutArgsRunsAllBranches(t *testing.T) {
	rt, d := switchRig(t, ModeWorkerSP)
	done := false
	d.Invoke(func(Result) { done = true })
	rt.Env.Run()
	if !done {
		t.Fatal("no-args invocation never completed")
	}
	// Paper behaviour: containers for all branches; 4 functions run.
	if got := totalColds(rt); got != 4 {
		t.Fatalf("%d cold starts, want 4 (all branches)", got)
	}
}

func TestSwitchNoBranchMatchesStillCompletes(t *testing.T) {
	// q matches neither condition is impossible here (they partition), so
	// force it with an unknown-variable error on both: every branch skips,
	// the skip wave reaches the sink, and the invocation completes.
	rt, d := switchRig(t, ModeWorkerSP)
	done := false
	d.InvokeArgs(map[string]any{"other": 1.0}, func(Result) { done = true })
	rt.Env.Run()
	if !done {
		t.Fatal("all-skip invocation never completed")
	}
	if d.CondErrors() != 2 {
		t.Fatalf("cond errors = %d, want 2", d.CondErrors())
	}
	// Only src runs; hd, sd, out are all skipped (out has no real preds).
	if got := totalColds(rt); got != 1 {
		t.Fatalf("%d cold starts, want 1", got)
	}
}

func TestSwitchDataGC(t *testing.T) {
	rt, d := switchRig(t, ModeWorkerSP)
	d.InvokeArgs(map[string]any{"q": 1080.0}, nil)
	rt.Env.Run()
	if n := rt.Store.Remote().Len(); n != 0 {
		t.Fatalf("%d keys leaked after switch invocation", n)
	}
}

func TestInvalidConditionRejectedAtDeploy(t *testing.T) {
	b := switchBench()
	for i, e := range b.Graph.Edges() {
		if e.Cond != "" {
			b.Graph.SetEdgeCond(i, "$q >")
			break
		}
	}
	rt := rig(1, network.MBps(50))
	if _, err := NewDeployment(rt, b, placeAll(b, "w0"), Options{}); err == nil {
		t.Fatal("broken condition accepted at deploy time")
	}
}

func TestSwitchFromWDLSource(t *testing.T) {
	// End-to-end: WDL switch -> benchmark -> engine with args.
	// (The WDL compiler stamps the same edge conditions this package
	// consumes; exercised via the faasflow package tests as well.)
	rt, d := switchRig(t, ModeMasterSP)
	runs := 0
	for _, q := range []float64{100, 900, 500} {
		d.InvokeArgs(map[string]any{"q": q}, func(Result) { runs++ })
	}
	rt.Env.Run()
	if runs != 3 {
		t.Fatalf("completed %d/3 mixed-branch invocations", runs)
	}
}
