package engine

import (
	"errors"
	"testing"

	"repro/internal/network"
)

// Satellite regression: when an executor burns its whole re-issue budget
// (here: the only worker is dead forever, so every re-issue lands back on
// it), the failure must surface as a typed ErrReissuesExhausted — step
// name and attempt count — through FailureStats, instead of draining
// silently with only a generic Failed flag.
func TestReissueExhaustionSurfacesTypedError(t *testing.T) {
	for _, mode := range []Mode{ModeWorkerSP, ModeMasterSP} {
		rt := rig(1, network.MBps(50))
		b := miniBench()
		d, err := NewDeployment(rt, b, placeAll(b, "w0"),
			Options{Mode: mode, Data: DataStore, MaxReissues: 3})
		if err != nil {
			t.Fatal(err)
		}
		rt.Nodes["w0"].Fail() // permanent: no survivor to re-place onto
		var res Result
		got := false
		d.Invoke(func(r Result) { res = r; got = true })
		rt.Env.Run()
		if !got {
			t.Fatalf("%v: exhausted invocation hung instead of draining", mode)
		}
		if !res.Failed {
			t.Fatalf("%v: Result.Failed = false after exhaustion", mode)
		}
		fs := d.FailureStatsSnapshot()
		if fs.ReissuesExhausted == 0 {
			t.Fatalf("%v: ReissuesExhausted = 0; want > 0 (stats: %+v)", mode, fs)
		}
		if int64(len(fs.Exhausted)) != fs.ReissuesExhausted {
			t.Fatalf("%v: %d typed records for %d exhaustions", mode, len(fs.Exhausted), fs.ReissuesExhausted)
		}
		e := fs.Exhausted[0]
		if e.Workflow != "mini" || e.Step == "" || e.Attempts != 3 || e.Inv != 0 {
			t.Fatalf("%v: exhaustion record = %+v; want workflow mini, named step, 3 attempts, inv 0", mode, e)
		}
		// It is an error: errors.As must match through a wrapped chain.
		var target *ErrReissuesExhausted
		wrapped := error(&e)
		if !errors.As(wrapped, &target) || target.Step != e.Step {
			t.Fatalf("%v: errors.As failed to match ErrReissuesExhausted", mode)
		}
		if e.Error() == "" {
			t.Fatalf("%v: empty error string", mode)
		}
	}
}

// Without exhaustion, the typed surface stays empty.
func TestNoExhaustionRecordsOnCleanRun(t *testing.T) {
	rt := rig(2, network.MBps(50))
	b := miniBench()
	d, err := NewDeployment(rt, b, placeRoundRobin(b, "w0", "w1"),
		Options{Mode: ModeWorkerSP, Data: DataStore, MaxReissues: 3})
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, rt, d)
	if res.Failed {
		t.Fatal("clean run failed")
	}
	fs := d.FailureStatsSnapshot()
	if fs.ReissuesExhausted != 0 || len(fs.Exhausted) != 0 {
		t.Fatalf("spurious exhaustion records: %+v", fs)
	}
}
