package engine

import (
	"encoding/json"
	"sort"
	"strconv"

	"repro/internal/dag"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Tracer records per-executor phase timings for deployed workflows. The
// output loads into any Chrome-trace viewer (chrome://tracing, Perfetto):
// one "process" per worker node, one "thread" per invocation, one span per
// executor phase — acquire (container wait + cold start), fetch (input
// download), exec (compute), store (output upload).
type Tracer struct {
	events []TraceEvent
}

// TraceEvent is one recorded phase span.
type TraceEvent struct {
	Node   string   // workflow step name (with #replica suffix for foreach)
	Phase  string   // acquire | fetch | exec | store
	Worker string   // worker node ID
	Inv    int64    // invocation ID
	Start  sim.Time // virtual time
	End    sim.Time
}

// NewTracer returns an empty tracer; attach it with Deployment.SetTracer.
func NewTracer() *Tracer { return &Tracer{} }

// Events returns the recorded spans in chronological order.
func (t *Tracer) Events() []TraceEvent {
	out := append([]TraceEvent(nil), t.events...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// Len reports the recorded span count.
func (t *Tracer) Len() int { return len(t.events) }

// Reset discards recorded events.
func (t *Tracer) Reset() { t.events = t.events[:0] }

func (t *Tracer) add(ev TraceEvent) {
	t.events = append(t.events, ev)
}

// chromeEvent is the Chrome trace "complete event" (ph="X") shape.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`  // microseconds
	Dur   float64        `json:"dur"` // microseconds
	PID   string         `json:"pid"` // worker
	TID   int64          `json:"tid"` // invocation
	Args  map[string]any `json:"args,omitempty"`
}

// ChromeJSON renders the trace in Chrome's array format.
func (t *Tracer) ChromeJSON() ([]byte, error) {
	evs := make([]chromeEvent, 0, len(t.events))
	for _, e := range t.Events() {
		evs = append(evs, chromeEvent{
			Name:  e.Node + ":" + e.Phase,
			Cat:   e.Phase,
			Phase: "X",
			TS:    float64(e.Start) / 1e3,
			Dur:   float64(e.End-e.Start) / 1e3,
			PID:   e.Worker,
			TID:   e.Inv,
			Args:  map[string]any{"phase": e.Phase},
		})
	}
	return json.MarshalIndent(evs, "", " ")
}

// SetTracer attaches (or detaches, with nil) a tracer to the deployment.
func (d *Deployment) SetTracer(t *Tracer) { d.tracer = t }

// span emits one phase event to the tracer and/or the observability bus,
// whichever is attached.
func (d *Deployment) span(inv *invocation, id dag.NodeID, replica int, phase string, start sim.Time) {
	if d.tracer == nil && !d.obs.Active() {
		return
	}
	node := d.g.Node(id)
	if d.tracer != nil {
		name := node.Name
		if node.Width > 1 {
			name = name + "#" + itoa(replica)
		}
		d.tracer.add(TraceEvent{
			Node:   name,
			Phase:  phase,
			Worker: inv.place[id],
			Inv:    inv.id,
			Start:  start,
			End:    d.rt.Env.Now(),
		})
	}
	if d.obs.Active() {
		d.obs.Publish(obs.PhaseEvent{
			Workflow: d.bench.Name,
			Inv:      inv.id,
			Node:     int(id),
			Name:     node.Name,
			Replica:  replica,
			Comp:     phaseComp(phase),
			Worker:   inv.place[id],
			Start:    start,
			End:      d.rt.Env.Now(),
		})
	}
}

func itoa(v int) string { return strconv.Itoa(v) }
