// External test package: perf imports engine, so the wrappers live
// outside package engine. Bodies are shared with the BENCH Runner; the
// obs-off/idle/on split is the self-overhead accounting axis.
package engine_test

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/perf"
)

func BenchmarkDispatchWorkerSP(b *testing.B) {
	perf.BenchEngineDispatch(b, engine.ModeWorkerSP, perf.ObsOff)
}

func BenchmarkDispatchMasterSP(b *testing.B) {
	perf.BenchEngineDispatch(b, engine.ModeMasterSP, perf.ObsOff)
}

func BenchmarkDispatchObsIdle(b *testing.B) {
	perf.BenchEngineDispatch(b, engine.ModeWorkerSP, perf.ObsIdle)
}

func BenchmarkDispatchObsOn(b *testing.B) {
	perf.BenchEngineDispatch(b, engine.ModeWorkerSP, perf.ObsOn)
}
