package engine

import (
	"testing"
	"time"

	"repro/internal/journal"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/sim"
)

func durableDeploy(t *testing.T, rt *Runtime, mode Mode) *Deployment {
	t.Helper()
	b := miniBench()
	jr := journal.New(rt.Env, journal.Config{})
	d, err := NewDeployment(rt, b, placeRoundRobin(b, "w0", "w1"),
		Options{Mode: mode, Data: DataStore, Journal: jr})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDurableRunCommitsEveryStep(t *testing.T) {
	for _, mode := range []Mode{ModeWorkerSP, ModeMasterSP} {
		rt := rig(2, network.MBps(50))
		d := durableDeploy(t, rt, mode)
		res := run(t, rt, d)
		if res.Failed {
			t.Fatalf("%v: invocation failed", mode)
		}
		st := d.Journal().Stats()
		// The mini diamond has 4 task nodes; each commits exactly once.
		if st.Committed != 4 || st.DupDrops != 0 {
			t.Fatalf("%v: journal stats = %+v, want 4 committed / 0 dups", mode, st)
		}
		if got := len(d.Journal().CommittedSteps(0)); got != 4 {
			t.Fatalf("%v: %d committed steps recorded, want 4", mode, got)
		}
	}
}

// TestCrashRestartReplaysCommittedCut crashes the engine mid-run and
// restarts it: the invocation must complete, committed steps must not
// re-execute (no duplicate journal appends), and only the uncommitted
// frontier is re-dispatched.
func TestCrashRestartReplaysCommittedCut(t *testing.T) {
	for _, mode := range []Mode{ModeWorkerSP, ModeMasterSP} {
		rt := rig(2, network.MBps(50))
		d := durableDeploy(t, rt, mode)
		var res Result
		got := false
		d.Invoke(func(r Result) { res = r; got = true })
		// 800ms: source `a` (cold start + 0.1s exec, committed ~620ms) is
		// durable; b and c are in flight and die with the engine.
		rt.Env.RunUntil(sim.Time(800 * time.Millisecond))
		if got {
			t.Fatalf("%v: invocation finished before the crash point", mode)
		}
		d.CrashEngine()
		if !d.EngineDown() {
			t.Fatalf("%v: engine not down after crash", mode)
		}
		rt.Env.RunUntil(sim.Time(1200 * time.Millisecond))
		if got {
			t.Fatalf("%v: invocation completed while the engine was down", mode)
		}
		d.RestartEngine()
		rt.Env.Run()
		if !got || res.Failed {
			t.Fatalf("%v: invocation did not complete after restart (got=%v failed=%v)", mode, got, res.Failed)
		}
		ds := d.DurableStatsSnapshot()
		if ds.EngineCrashes != 1 {
			t.Fatalf("%v: crashes = %d", mode, ds.EngineCrashes)
		}
		if ds.ReplaySkips == 0 {
			t.Fatalf("%v: no committed steps were skipped on replay", mode)
		}
		if ds.Redispatched == 0 {
			t.Fatalf("%v: nothing re-dispatched on replay", mode)
		}
		if ds.Journal.DupDrops != 0 {
			t.Fatalf("%v: %d committed steps re-executed after restart", mode, ds.Journal.DupDrops)
		}
		if ds.Journal.Committed != 4 {
			t.Fatalf("%v: journal committed = %d, want 4", mode, ds.Journal.Committed)
		}
	}
}

// TestInvokeWhileDownDispatchesOnRestart submits an invocation into a
// crashed engine: it must queue (not run) and start from scratch when the
// engine comes back.
func TestInvokeWhileDownDispatchesOnRestart(t *testing.T) {
	rt := rig(2, network.MBps(50))
	d := durableDeploy(t, rt, ModeWorkerSP)
	d.CrashEngine()
	var res Result
	got := false
	d.Invoke(func(r Result) { res = r; got = true })
	rt.Env.Run()
	if got {
		t.Fatal("invocation ran on a crashed engine")
	}
	d.RestartEngine()
	rt.Env.Run()
	if !got || res.Failed {
		t.Fatalf("invocation after restart: got=%v failed=%v", got, res.Failed)
	}
	if st := d.Journal().Stats(); st.Committed != 4 {
		t.Fatalf("journal committed = %d, want 4", st.Committed)
	}
}

// TestLostInputReexecutesCommittedProducer loses a committed step's
// outputs (node memory wiped during the engine-down window) and checks
// the replayed consumer re-runs the producer instead of wedging — with
// the journal dup-dropping the producer's second commit.
func TestLostInputReexecutesCommittedProducer(t *testing.T) {
	rt := rig(2, network.MBps(50))
	b := miniBench()
	jr := journal.New(rt.Env, journal.Config{})
	// Single-worker placement so outputs live in w0's memory shard.
	d, err := NewDeployment(rt, b, placeAll(b, "w0"),
		Options{Mode: ModeWorkerSP, Data: DataStore, Journal: jr})
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	got := false
	d.Invoke(func(r Result) { res = r; got = true })
	rt.Env.RunUntil(sim.Time(800 * time.Millisecond))
	d.CrashEngine()
	// The node's memory dies with the crash window: a's committed outputs
	// are gone.
	rt.Store.DropWorker("w0")
	d.RestartEngine()
	rt.Env.Run()
	if !got || res.Failed {
		t.Fatalf("invocation did not recover: got=%v failed=%v", got, res.Failed)
	}
	ds := d.DurableStatsSnapshot()
	if ds.LostInputs == 0 || ds.Reexecs == 0 {
		t.Fatalf("stats = %+v, want lost inputs and a producer re-execution", ds)
	}
	if ds.Journal.DupDrops == 0 {
		t.Fatal("re-executed producer's commit was not dup-dropped")
	}
}

// TestDurableCrashRecoveryDeterministic runs the same crash/restart
// sequence twice and requires identical completion times and counters.
func TestDurableCrashRecoveryDeterministic(t *testing.T) {
	runOnce := func() (sim.Time, DurableStats) {
		rt := rig(2, network.MBps(50))
		d := durableDeploy(t, rt, ModeWorkerSP)
		var doneAt sim.Time
		d.Invoke(func(Result) { doneAt = rt.Env.Now() })
		rt.Env.Schedule(150*time.Millisecond, d.CrashEngine)
		rt.Env.Schedule(400*time.Millisecond, d.RestartEngine)
		rt.Env.Run()
		return doneAt, d.DurableStatsSnapshot()
	}
	t1, s1 := runOnce()
	t2, s2 := runOnce()
	if t1 != t2 {
		t.Fatalf("completion times differ: %v vs %v", t1, t2)
	}
	if s1 != s2 {
		t.Fatalf("durable stats differ:\n%+v\n%+v", s1, s2)
	}
	if t1 == 0 {
		t.Fatal("invocation never completed")
	}
}

// TestRecoveryAttributedOnCriticalPath checks the crash/restart window
// surfaces in the critical-path breakdown as replay (or recovery) time
// and the attribution still partitions the whole latency exactly.
func TestRecoveryAttributedOnCriticalPath(t *testing.T) {
	for _, mode := range []Mode{ModeWorkerSP, ModeMasterSP} {
		rt := rig(2, network.MBps(50))
		d := durableDeploy(t, rt, mode)
		bus := obs.NewBus()
		log := obs.NewTraceLog()
		bus.Subscribe(log.Record)
		rt.Fabric.SetBus(bus)
		for _, n := range rt.Nodes {
			n.SetBus(bus)
		}
		rt.Store.SetBus(bus)
		d.SetObserver(bus)
		var res Result
		d.Invoke(func(r Result) { res = r })
		rt.Env.Schedule(150*time.Millisecond, d.CrashEngine)
		rt.Env.Schedule(400*time.Millisecond, d.RestartEngine)
		rt.Env.Run()
		if res.Failed {
			t.Fatalf("%v: invocation failed", mode)
		}
		bd, err := obs.AnalyzeInvocation(log, 0)
		if err != nil {
			t.Fatal(err)
		}
		checkExact(t, bd, res)
		if bd.ByComponent[obs.CompReplay] == 0 {
			t.Fatalf("%v: no replay time on the critical path: %v", mode, bd.ByComponent)
		}
	}
}

// TestReplacementAvoidsScheduledFaultWindow (satellite): a stranded
// task's replacement must skip workers the avoid predicate excludes —
// nodes sitting inside an injected NodeDown window — unless every
// survivor is excluded.
func TestReplacementAvoidsScheduledFaultWindow(t *testing.T) {
	rt := rig(3, network.MBps(50))
	b := miniBench()
	d, err := NewDeployment(rt, b, placeAll(b, "w0"),
		Options{Mode: ModeWorkerSP, Data: DataStore, MaxReissues: 4})
	if err != nil {
		t.Fatal(err)
	}
	bus := obs.NewBus()
	var replacedTo []string
	bus.Subscribe(func(ev obs.Event) {
		if se, ok := ev.(obs.StepEvent); ok && se.State == obs.StepReplaced {
			replacedTo = append(replacedTo, se.Worker)
		}
	})
	d.SetObserver(bus)
	// w1 sits inside a scheduled (not yet applied) fault window; w0 dies
	// for real before dispatch.
	d.SetAvoid(func(w string) bool { return w == "w1" })
	rt.Nodes["w0"].Fail()
	var res Result
	got := false
	d.Invoke(func(r Result) { res = r; got = true })
	rt.Env.Schedule(2*time.Second, rt.Nodes["w0"].Recover)
	rt.Env.Run()
	if !got || res.Failed {
		t.Fatalf("invocation did not recover: got=%v failed=%v", got, res.Failed)
	}
	if len(replacedTo) == 0 {
		t.Fatal("no tasks were re-placed off the dead node")
	}
	for i, w := range replacedTo {
		if w == "w1" {
			t.Fatalf("replacement %d landed on avoided worker w1 (all: %v)", i, replacedTo)
		}
	}
}

// TestReplacementFallsBackWhenAllAvoided: if the predicate excludes every
// survivor, it is ignored — a doomed placement beats none.
func TestReplacementFallsBackWhenAllAvoided(t *testing.T) {
	rt := rig(2, network.MBps(50))
	b := miniBench()
	d, err := NewDeployment(rt, b, placeAll(b, "w0"),
		Options{Mode: ModeWorkerSP, Data: DataStore, MaxReissues: 4})
	if err != nil {
		t.Fatal(err)
	}
	d.SetAvoid(func(string) bool { return true })
	rt.Nodes["w0"].Fail()
	var res Result
	got := false
	d.Invoke(func(r Result) { res = r; got = true })
	rt.Env.Schedule(2*time.Second, rt.Nodes["w0"].Recover)
	rt.Env.Run()
	if !got || res.Failed {
		t.Fatalf("all-avoided fallback broke recovery: got=%v failed=%v", got, res.Failed)
	}
}
