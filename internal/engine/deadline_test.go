package engine

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
)

// checkNoResidualWork asserts the zero-leak property after a drain: no
// containers held, no queued acquisitions, no running compute, no pending
// store operations — nothing left consuming resources for dead workflows.
func checkNoResidualWork(t *testing.T, rt *Runtime) {
	t.Helper()
	for id, n := range rt.Nodes {
		if r := n.RunningTasks(); r != 0 {
			t.Errorf("node %s: %d tasks still running", id, r)
		}
		if q := n.QueuedAcquires(); q != 0 {
			t.Errorf("node %s: %d acquisitions still queued", id, q)
		}
		if b := n.BusyContainers(); b != 0 {
			t.Errorf("node %s: %d containers still held", id, b)
		}
	}
	if p := rt.Store.Remote().PendingOps(); p != 0 {
		t.Errorf("remote store: %d operations still pending", p)
	}
}

func TestDeadlineDrainsBothModes(t *testing.T) {
	for _, mode := range []Mode{ModeWorkerSP, ModeMasterSP} {
		t.Run(mode.String(), func(t *testing.T) {
			rt := rig(2, 50e6)
			b := miniBench() // critical exec 0.3s + cold starts
			d, err := NewDeployment(rt, b, placeRoundRobin(b, "w0", "w1"),
				Options{Mode: mode, Data: DataStore, NoJitter: true})
			if err != nil {
				t.Fatal(err)
			}
			var res Result
			got := false
			// 150ms: enough for step a, dead before the workflow finishes.
			d.InvokeOpts(InvokeOptions{Deadline: sim.Time(150 * time.Millisecond)},
				func(r Result) { res = r; got = true })
			rt.Env.Run()
			if !got {
				t.Fatal("deadlined invocation never completed (hang)")
			}
			if !res.Failed || !res.DeadlineExceeded {
				t.Fatalf("result = %+v, want Failed and DeadlineExceeded", res)
			}
			if d.DeadlineExceededCount() == 0 {
				t.Fatal("DeadlineExceededCount = 0")
			}
			if d.LiveNow() != 0 {
				t.Fatalf("LiveNow = %d after drain", d.LiveNow())
			}
			checkNoResidualWork(t, rt)
			// The drain must be prompt: everything should settle well before
			// the undisturbed workflow would have finished (~1s with cold
			// starts and transfers). Allow control-message tail latency.
			if res.End > sim.Time(600*time.Millisecond) {
				t.Fatalf("drain completed at %v, too slow for a 150ms deadline", res.End)
			}
			if st := d.FailureStatsSnapshot(); st.DeadlineExceeded == 0 {
				t.Fatalf("FailureStats = %+v, want DeadlineExceeded > 0", st)
			}
		})
	}
}

func TestDeadlineZeroLeavesRunsUntouched(t *testing.T) {
	rt := rig(2, 50e6)
	b := miniBench()
	d, err := NewDeployment(rt, b, placeRoundRobin(b, "w0", "w1"),
		Options{Mode: ModeWorkerSP, Data: DataStore})
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, rt, d)
	if res.Failed || res.DeadlineExceeded {
		t.Fatalf("no-deadline run failed: %+v", res)
	}
	if d.DeadlineExceededCount() != 0 {
		t.Fatalf("DeadlineExceededCount = %d without deadlines", d.DeadlineExceededCount())
	}
}

func TestDeadlineExpiresQueuedAcquires(t *testing.T) {
	// One worker, many concurrent invocations: the per-function scale limit
	// queues most acquires. A short deadline must withdraw every queued
	// waiter and still complete every invocation — promptly and leak-free.
	for _, mode := range []Mode{ModeWorkerSP, ModeMasterSP} {
		t.Run(mode.String(), func(t *testing.T) {
			rt := rig(1, 50e6)
			b := miniBench()
			d, err := NewDeployment(rt, b, placeAll(b, "w0"),
				Options{Mode: mode, Data: DataStore, NoJitter: true})
			if err != nil {
				t.Fatal(err)
			}
			const n = 40
			completed, deadlined := 0, 0
			for i := 0; i < n; i++ {
				d.InvokeOpts(InvokeOptions{Deadline: sim.Time(2 * time.Second)}, func(r Result) {
					completed++
					if r.DeadlineExceeded {
						deadlined++
					}
				})
			}
			rt.Env.Run()
			if completed != n {
				t.Fatalf("completed = %d of %d (hang)", completed, n)
			}
			if deadlined == 0 {
				t.Fatal("no invocation deadlined despite saturation")
			}
			checkNoResidualWork(t, rt)
			// In WorkerSP the decentralized engines dispatch fast enough to
			// pile waiters onto the acquire queues, so some must be withdrawn
			// at the deadline. MasterSP's serial master throttles dispatch —
			// its deadlines fire at trigger time instead.
			if mode == ModeWorkerSP {
				if st := rt.Nodes["w0"].Stats(); st.DeadlineAborts == 0 {
					t.Fatalf("node stats = %+v, want DeadlineAborts > 0 (queued waiters withdrawn)", st)
				}
			}
		})
	}
}

func TestDeadlineDeterminism(t *testing.T) {
	// Same schedule, same deadlines -> identical completion instants.
	runOnce := func() string {
		rt := rig(2, 50e6)
		b := miniBench()
		d, err := NewDeployment(rt, b, placeRoundRobin(b, "w0", "w1"),
			Options{Mode: ModeWorkerSP, Data: DataStore})
		if err != nil {
			t.Fatal(err)
		}
		out := ""
		for i := 0; i < 10; i++ {
			i := i
			rt.Env.Schedule(time.Duration(i)*100*time.Millisecond, func() {
				d.InvokeOpts(InvokeOptions{Deadline: rt.Env.Now() + sim.Time(700*time.Millisecond)},
					func(r Result) {
						out += fmt.Sprintf("%d:%d:%v:%v;", r.ID, int64(r.End), r.Failed, r.DeadlineExceeded)
					})
			})
		}
		rt.Env.Run()
		return out
	}
	a, b := runOnce(), runOnce()
	if a != b {
		t.Fatalf("nondeterministic deadline runs:\n%s\n%s", a, b)
	}
	if a == "" {
		t.Fatal("no completions recorded")
	}
}
