package engine

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dag"
	"repro/internal/journal"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/workloads"
)

// --- Direct passing --------------------------------------------------------

func TestDirectPassingSkipsRemoteHop(t *testing.T) {
	rt := rig(2, network.MBps(50))
	b := miniBench()
	d, err := NewDeployment(rt, b, placeRoundRobin(b, "w0", "w1"),
		Options{Mode: ModeWorkerSP, Data: DataStore, FastPath: FastPathOptions{DirectPassing: true}})
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, rt, d)
	if res.Failed {
		t.Fatal("invocation failed")
	}
	// Every edge of the diamond has a known consumer, so every output is
	// direct-pushed and the remote store is never touched.
	if st := rt.Store.Remote().Stats(); st.Puts != 0 || st.Gets != 0 {
		t.Fatalf("remote touched despite direct passing: %+v", st)
	}
	fp := d.FastPathStatsSnapshot()
	if fp.DirectPushes != 4 || fp.DirectFallbacks != 0 {
		t.Fatalf("fast-path stats = %+v, want 4 pushes / 0 fallbacks", fp)
	}
	// Consumers read their pushed copies locally.
	if rt.Store.LocalMisses() != 0 {
		t.Fatalf("local misses = %d, want 0", rt.Store.LocalMisses())
	}
	if rt.Store.Remote().Len() != 0 {
		t.Fatal("keys leaked")
	}
}

func TestDirectPassingFasterOnCrossNodeEdges(t *testing.T) {
	lat := func(direct bool) float64 {
		rt := rig(2, network.MBps(25))
		b := VideoLike()
		d, err := NewDeployment(rt, b, placeRoundRobin(b, "w0", "w1"),
			Options{Mode: ModeWorkerSP, Data: DataStore, NoJitter: true,
				FastPath: FastPathOptions{DirectPassing: direct}})
		if err != nil {
			t.Fatal(err)
		}
		run(t, rt, d) // warm containers
		return run(t, rt, d).Latency().Seconds()
	}
	with, without := lat(true), lat(false)
	if with >= without {
		t.Fatalf("direct passing latency %.3fs not below store-hop %.3fs", with, without)
	}
}

func TestDirectPassingFallsBackWhenPushRejected(t *testing.T) {
	// A remote-only hybrid (no worker memory tier) rejects every push; the
	// engine must fall back to the store hop and still complete.
	env := sim.NewEnv()
	fab := network.New(env, network.DefaultConfig())
	fab.AddNode("master", network.MBps(50), network.MBps(50))
	nodes := map[string]*cluster.Node{}
	mems := map[string]*store.MemKV{}
	for i := 0; i < 2; i++ {
		id := fmt.Sprintf("w%d", i)
		fab.AddNode(id, network.MBps(100), network.MBps(100))
		nodes[id] = cluster.NewNode(env, id, cluster.DefaultConfig())
		mems[id] = store.NewMemKV(env, id, 8<<30)
	}
	remote := store.NewRemoteKV(env, fab, "master", time.Millisecond)
	rt := &Runtime{Env: env, Fabric: fab, Nodes: nodes,
		Store: store.NewHybrid(remote, mems, true), Master: "master"}
	b := miniBench()
	d, err := NewDeployment(rt, b, placeRoundRobin(b, "w0", "w1"),
		Options{Mode: ModeWorkerSP, Data: DataStore, FastPath: FastPathOptions{DirectPassing: true}})
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, rt, d)
	if res.Failed {
		t.Fatal("invocation failed")
	}
	fp := d.FastPathStatsSnapshot()
	if fp.DirectPushes != 0 || fp.DirectFallbacks != 4 {
		t.Fatalf("fast-path stats = %+v, want 0 pushes / 4 fallbacks", fp)
	}
	if st := rt.Store.Remote().Stats(); st.Puts == 0 {
		t.Fatal("fallback never reached the remote store")
	}
}

func TestDirectPassingSkippedUnderReplication(t *testing.T) {
	// Replication needs a durable database copy; direct working copies do
	// not qualify, so the feature must stand down entirely.
	rt := rig(3, network.MBps(50))
	rt.Store.SetReplication(2, 0)
	b := miniBench()
	d, err := NewDeployment(rt, b, placeRoundRobin(b, "w0", "w1", "w2"),
		Options{Mode: ModeWorkerSP, Data: DataStore, FastPath: FastPathOptions{DirectPassing: true}})
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, rt, d)
	if res.Failed {
		t.Fatal("invocation failed")
	}
	fp := d.FastPathStatsSnapshot()
	if fp.DirectPushes != 0 || fp.DirectFallbacks != 0 {
		t.Fatalf("fast-path stats = %+v, want direct passing fully stood down", fp)
	}
	if rt.Store.ReplStats().ReplicaWrites == 0 {
		t.Fatal("replication produced no replica copies")
	}
}

func TestDirectPassingAttributedOnCriticalPath(t *testing.T) {
	for _, mode := range []Mode{ModeWorkerSP, ModeMasterSP} {
		log, res := observe(t, mode, Options{Data: DataStore,
			FastPath: FastPathOptions{DirectPassing: true}})
		bd := analyze(t, log)
		checkExact(t, bd, res)
		if bd.Component(obs.CompDirect) == 0 {
			t.Fatalf("%v: no direct-passing time on the critical path: %v", mode, bd.ByComponent)
		}
	}
}

// --- DAG-lookahead pre-warm ------------------------------------------------

func TestPrewarmHidesColdStarts(t *testing.T) {
	lat := func(prewarm bool) (float64, FastPathStats) {
		rt := rig(2, network.MBps(50))
		b := miniBench()
		d, err := NewDeployment(rt, b, placeRoundRobin(b, "w0", "w1"),
			Options{Mode: ModeWorkerSP, Data: DataStore, NoJitter: true,
				FastPath: FastPathOptions{Prewarm: prewarm}})
		if err != nil {
			t.Fatal(err)
		}
		// First (all-cold) invocation: this is where lookahead pays.
		res := run(t, rt, d)
		return res.Latency().Seconds(), d.FastPathStatsSnapshot()
	}
	with, fp := lat(true)
	without, _ := lat(false)
	if with >= without {
		t.Fatalf("prewarm latency %.3fs not below baseline %.3fs", with, without)
	}
	if fp.PrewarmIssued == 0 || fp.PrewarmHits == 0 {
		t.Fatalf("fast-path stats = %+v, want issued and claimed pre-warms", fp)
	}
}

// TestPrewarmAddsPoolCapacity pins the PR-7 finding: a lookahead acquire
// must grow the function pool while the predecessor still holds its
// container — not merely reorder acquisitions within existing capacity.
func TestPrewarmAddsPoolCapacity(t *testing.T) {
	g := dag.New("chain")
	a := g.AddTask("a", "f")
	b := g.AddTask("b", "f") // same function: capacity must reach 2
	g.Connect(a, b, 1<<10)
	fns := map[string]workloads.FunctionSpec{
		"f": {Name: "f", ExecSeconds: 0.1, MemPeak: 64 << 20},
	}
	bench := &workloads.Benchmark{Name: "chain", Graph: g, Functions: fns, MonolithicBytes: 1 << 10}
	rt := rig(1, network.MBps(50))
	d, err := NewDeployment(rt, bench, placeAll(bench, "w0"),
		Options{Mode: ModeWorkerSP, Data: DataStore, NoJitter: true,
			FastPath: FastPathOptions{Prewarm: true}})
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, rt, d)
	if res.Failed {
		t.Fatal("invocation failed")
	}
	if _, peak := rt.Nodes["w0"].ScaleOf("f"); peak != 2 {
		t.Fatalf("pool peak = %d, want 2 (pre-warm overlapping the busy predecessor)", peak)
	}
	if busy := rt.Nodes["w0"].BusyContainers(); busy != 0 {
		t.Fatalf("%d containers still busy after the run", busy)
	}
}

// TestPrewarmPrefersWarmContainer: a pre-warm still cold-starting must not
// be waited on when a warm container sits idle — that would regress below
// feature-off behavior.
func TestPrewarmPrefersWarmContainer(t *testing.T) {
	g := dag.New("chain")
	a := g.AddTask("a", "f")
	b := g.AddTask("b", "f")
	g.Connect(a, b, 1<<10)
	fns := map[string]workloads.FunctionSpec{
		"f": {Name: "f", ExecSeconds: 0.1, MemPeak: 64 << 20},
	}
	bench := &workloads.Benchmark{Name: "chain", Graph: g, Functions: fns, MonolithicBytes: 1 << 10}
	lat := func(prewarm bool) float64 {
		rt := rig(1, network.MBps(50))
		d, err := NewDeployment(rt, bench, placeAll(bench, "w0"),
			Options{Mode: ModeWorkerSP, Data: DataStore, NoJitter: true,
				FastPath: FastPathOptions{Prewarm: prewarm}})
		if err != nil {
			t.Fatal(err)
		}
		return run(t, rt, d).Latency().Seconds()
	}
	with, without := lat(true), lat(false)
	// b reuses a's released warm container in both runs; the in-flight
	// pre-warm must not add wait time.
	if with > without+1e-9 {
		t.Fatalf("prewarm latency %.4fs regressed above baseline %.4fs", with, without)
	}
}

func TestPrewarmCancelledOnFailureSkipWave(t *testing.T) {
	for _, mode := range []Mode{ModeWorkerSP, ModeMasterSP} {
		rt := rig(2, network.MBps(50))
		b := miniBench()
		d, err := NewDeployment(rt, b, placeRoundRobin(b, "w0", "w1"),
			Options{Mode: mode, Data: DataStore, FailureRate: 1, MaxAttempts: 1,
				FastPath: FastPathOptions{Prewarm: true}})
		if err != nil {
			t.Fatal(err)
		}
		res := run(t, rt, d)
		if !res.Failed {
			t.Fatalf("%v: invocation should have failed (failure rate 1)", mode)
		}
		fp := d.FastPathStatsSnapshot()
		// Source a crashed; b and c (pre-warmed during a's attempt) drain as
		// skips and must cancel their slots.
		if fp.PrewarmIssued == 0 || fp.PrewarmCancelled == 0 {
			t.Fatalf("%v: fast-path stats = %+v, want issued and cancelled pre-warms", mode, fp)
		}
		for id, n := range rt.Nodes {
			if busy := n.BusyContainers(); busy != 0 {
				t.Fatalf("%v: %d containers leaked on %s", mode, busy, id)
			}
		}
	}
}

func TestPrewarmOverlapAttributedOnCriticalPath(t *testing.T) {
	log, res := observe(t, ModeWorkerSP, Options{Data: DataStore, NoJitter: true,
		FastPath: FastPathOptions{Prewarm: true}})
	bd := analyze(t, log)
	checkExact(t, bd, res)
	// The first (cold) invocation claims in-flight pre-warms; their residual
	// tails surface as prewarm time and displace part of plain acquire.
	if bd.Component(obs.CompPrewarmOverlap) == 0 {
		t.Fatalf("no prewarm-overlap time on the critical path: %v", bd.ByComponent)
	}
}

// --- Memoization -----------------------------------------------------------

func TestMemoSecondInvocationHits(t *testing.T) {
	for _, mode := range []Mode{ModeWorkerSP, ModeMasterSP} {
		rt := rig(2, network.MBps(50))
		b := miniBench()
		d, err := NewDeployment(rt, b, placeRoundRobin(b, "w0", "w1"),
			Options{Mode: mode, Data: DataStore, NoJitter: true,
				FastPath: FastPathOptions{Memoize: true}})
		if err != nil {
			t.Fatal(err)
		}
		var first, second Result
		d.Invoke(func(r Result) {
			first = r
			d.Invoke(func(r2 Result) { second = r2 })
		})
		rt.Env.Run()
		if first.Latency() <= 0 || second.Latency() <= 0 {
			t.Fatalf("%v: invocations did not complete", mode)
		}
		fp := d.FastPathStatsSnapshot()
		if fp.MemoMisses != 4 || fp.MemoHits != 4 {
			t.Fatalf("%v: memo stats = %+v, want 4 misses then 4 hits", mode, fp)
		}
		// A hit skips container acquire and execution entirely.
		if second.Latency() >= first.Latency()/2 {
			t.Fatalf("%v: memoized latency %v not well below first run %v",
				mode, second.Latency(), first.Latency())
		}
		if rt.Store.Remote().Len() != 0 {
			t.Fatalf("%v: keys leaked", mode)
		}
	}
}

func TestMemoDistinctArgsMiss(t *testing.T) {
	rt := rig(2, network.MBps(50))
	b := miniBench()
	d, err := NewDeployment(rt, b, placeRoundRobin(b, "w0", "w1"),
		Options{Mode: ModeWorkerSP, Data: DataStore,
			FastPath: FastPathOptions{Memoize: true}})
	if err != nil {
		t.Fatal(err)
	}
	d.InvokeArgs(map[string]any{"x": 1}, func(Result) {
		d.InvokeArgs(map[string]any{"x": 2}, func(Result) {})
	})
	rt.Env.Run()
	if fp := d.FastPathStatsSnapshot(); fp.MemoHits != 0 || fp.MemoMisses != 8 {
		t.Fatalf("memo stats = %+v, want 0 hits across distinct arguments", fp)
	}
}

func TestMemoHitAttributedOnCriticalPath(t *testing.T) {
	rt := rig(2, network.MBps(50))
	b := miniBench()
	d, err := NewDeployment(rt, b, placeRoundRobin(b, "w0", "w1"),
		Options{Mode: ModeWorkerSP, Data: DataStore,
			FastPath: FastPathOptions{Memoize: true}})
	if err != nil {
		t.Fatal(err)
	}
	bus := obs.NewBus()
	log := obs.NewTraceLog()
	bus.Subscribe(log.Record)
	rt.Fabric.SetBus(bus)
	for _, n := range rt.Nodes {
		n.SetBus(bus)
	}
	rt.Store.SetBus(bus)
	d.SetObserver(bus)
	var second Result
	d.Invoke(func(Result) {
		d.Invoke(func(r Result) { second = r })
	})
	rt.Env.Run()
	bd, err := obs.AnalyzeInvocation(log, 1)
	if err != nil {
		t.Fatal(err)
	}
	checkExact(t, bd, second)
	if bd.Component(obs.CompMemoHit) == 0 {
		t.Fatalf("no memo-hit time on the critical path: %v", bd.ByComponent)
	}
	if bd.Component(obs.CompExec) != 0 {
		t.Fatalf("memoized run still shows exec time: %v", bd.ByComponent)
	}
}

// TestMemoHitStillCommitsDurably (satellite): a memo hit must route through
// commitStep so crash replay skips it — DupDrops stays 0 and ReplaySkips
// counts the committed memo-hit steps.
func TestMemoHitStillCommitsDurably(t *testing.T) {
	for _, mode := range []Mode{ModeWorkerSP, ModeMasterSP} {
		rt := rig(2, network.MBps(50))
		b := miniBench()
		jr := journal.New(rt.Env, journal.Config{})
		d, err := NewDeployment(rt, b, placeRoundRobin(b, "w0", "w1"),
			Options{Mode: mode, Data: DataStore, Journal: jr,
				FastPath: FastPathOptions{Memoize: true}})
		if err != nil {
			t.Fatal(err)
		}
		var second Result
		secondDone := false
		d.Invoke(func(Result) {
			d.Invoke(func(r Result) { second = r; secondDone = true })
			// Crash once the memoized run has committed at least one step,
			// then restart: replay must skip the committed memo-hit cut.
			var watch func()
			watch = func() {
				if secondDone {
					return
				}
				if jr.Stats().Committed >= 5 {
					d.CrashEngine()
					rt.Env.Schedule(50*time.Millisecond, d.RestartEngine)
					return
				}
				rt.Env.Schedule(time.Millisecond, watch)
			}
			watch()
		})
		rt.Env.Run()
		if !secondDone || second.Failed {
			t.Fatalf("%v: memoized run did not recover (done=%v failed=%v)",
				mode, secondDone, second.Failed)
		}
		ds := d.DurableStatsSnapshot()
		if ds.EngineCrashes != 1 {
			t.Fatalf("%v: crashes = %d, want 1", mode, ds.EngineCrashes)
		}
		if ds.ReplaySkips == 0 {
			t.Fatalf("%v: committed memo-hit steps were not skipped on replay", mode)
		}
		if ds.Journal.DupDrops != 0 {
			t.Fatalf("%v: %d duplicate commits — memo hits re-committed committed steps", mode, ds.Journal.DupDrops)
		}
		if ds.Journal.Committed != 8 {
			t.Fatalf("%v: journal committed = %d, want 8 (two full runs)", mode, ds.Journal.Committed)
		}
		if fp := d.FastPathStatsSnapshot(); fp.MemoHits < 4 {
			t.Fatalf("%v: memo hits = %d, want >= 4", mode, fp.MemoHits)
		}
	}
}

// --- Composition & determinism --------------------------------------------

func TestFastPathAllFeaturesDeterministic(t *testing.T) {
	runOnce := func() (sim.Time, FastPathStats) {
		rt := rig(3, network.MBps(50))
		b := workloads.Epigenomics()
		d, err := NewDeployment(rt, b, placeRoundRobin(b, "w0", "w1", "w2"),
			Options{Mode: ModeWorkerSP, Data: DataStore,
				FastPath: FastPathOptions{DirectPassing: true, Prewarm: true, Memoize: true}})
		if err != nil {
			t.Fatal(err)
		}
		var doneAt sim.Time
		d.Invoke(func(Result) {
			d.Invoke(func(Result) { doneAt = rt.Env.Now() })
		})
		rt.Env.Run()
		return doneAt, d.FastPathStatsSnapshot()
	}
	t1, s1 := runOnce()
	t2, s2 := runOnce()
	if t1 != t2 || s1 != s2 {
		t.Fatalf("fast path nondeterministic:\n%v %+v\n%v %+v", t1, s1, t2, s2)
	}
	if t1 == 0 {
		t.Fatal("invocations never completed")
	}
	if s1.DirectPushes == 0 || s1.PrewarmIssued == 0 || s1.MemoHits == 0 {
		t.Fatalf("expected all three features active: %+v", s1)
	}
}

func TestFastPathAllFeaturesExactAttribution(t *testing.T) {
	for _, mode := range []Mode{ModeWorkerSP, ModeMasterSP} {
		log, res := observe(t, mode, Options{Data: DataStore,
			FastPath: FastPathOptions{DirectPassing: true, Prewarm: true, Memoize: true}})
		bd := analyze(t, log)
		checkExact(t, bd, res)
	}
}

func TestFastPathOffByDefault(t *testing.T) {
	if (Options{}).withDefaults().FastPath.Enabled() {
		t.Fatal("fast path enabled by default")
	}
	o := Options{FastPath: FastPathOptions{Memoize: true}}.withDefaults()
	if o.FastPath.MemoLookup != 200*time.Microsecond {
		t.Fatalf("MemoLookup default = %v", o.FastPath.MemoLookup)
	}
}
