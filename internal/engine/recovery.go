package engine

import (
	"errors"
	"time"

	"repro/internal/cluster"
	"repro/internal/dag"
	"repro/internal/obs"
	"repro/internal/sim"
)

// This file implements the engine's fault-recovery layer: per-attempt task
// timeouts, exponential backoff, and re-issue of executors stranded on dead
// nodes — including re-placing their tasks onto surviving workers. The
// recovery dispatch is mode-specific, mirroring where the trigger state
// lives: MasterSP re-issues from the master engine (which owns every task
// assignment), WorkerSP re-issues from the stranded task's predecessor
// worker (the engine that originally triggered it), falling back to the
// master when every predecessor's worker is dead too.

// execState tracks one executor slot — (invocation, node, replica) — across
// crash retries and fault re-issues. seq invalidates stale attempts: every
// phase callback of an attempt re-checks that it is still the newest one,
// so an attempt abandoned by a timeout can never complete the step twice.
type execState struct {
	seq      int
	finished bool
}

// startAttempt runs one executor attempt: container acquire → input fetch →
// execute → (crash?) → output store → release, guarded by the task timeout.
// attempt is the 1-based crash-budget counter; reissue counts fault-driven
// re-issues (its budget is separate — a long-lived executor surviving a
// node death should not burn its crash retries).
func (d *Deployment) startAttempt(inv *invocation, id dag.NodeID, replica, attempt, reissue int, st *execState, onDone func(failed bool)) {
	if inv.abandoned {
		return // orphaned by an engine crash; replay owns the step now
	}
	if d.fenceCheck(inv, id, "dispatch") {
		return // shard moved to a successor; it owns the step now
	}
	node := d.g.Node(id)
	workerID := inv.place[id]
	w := d.rt.Nodes[workerID]
	st.seq++
	mySeq := st.seq
	attemptStart := d.rt.Env.Now()

	if d.deadlineExceeded(inv) {
		// The invocation's deadline died before this attempt started (e.g.
		// a crash-retry backoff outlived it): abandon without dispatching.
		st.finished = true
		d.failDeadline(inv, id, "dispatch")
		d.pubStep(inv, id, obs.StepFailed)
		onDone(true)
		return
	}

	if w.Failed() {
		// The target died between the trigger and this attempt; recover
		// immediately rather than waiting out the timeout.
		d.recoverExecutor(inv, id, replica, attempt, reissue, st, attemptStart, "node-down", onDone)
		return
	}

	stale := func() bool { return st.seq != mySeq || st.finished || inv.abandoned }

	var timeout *sim.Event
	if d.opts.TaskTimeout > 0 {
		timeout = d.rt.Env.Schedule(d.opts.TaskTimeout, func() {
			if stale() {
				return
			}
			d.timeoutCount++
			d.pubStep(inv, id, obs.StepTimedOut)
			d.recoverExecutor(inv, id, replica, attempt, reissue, st, attemptStart, "timeout", onDone)
		})
	}
	cancelTimeout := func() {
		if timeout != nil {
			timeout.Cancel()
			timeout = nil
		}
	}

	spec := d.bench.Functions[node.Function]
	exec := spec.ExecSeconds
	if !d.opts.NoJitter {
		exec *= execJitter(inv.id, id+dag.NodeID(replica)<<16)
	}
	if d.opts.ExecScale != nil {
		exec *= d.opts.ExecScale(node.Function)
	}

	// abortDeadline abandons the attempt at a phase boundary once the
	// invocation deadline is dead: the container is returned immediately
	// (no zombie work) and the step drains as a failure.
	abortDeadline := func(c *cluster.Container, where string) {
		cancelTimeout()
		st.finished = true
		if c != nil {
			w.Release(c)
		}
		d.failDeadline(inv, id, where)
		d.pubStep(inv, id, obs.StepFailed)
		onDone(true)
	}

	acquireStart := d.rt.Env.Now()
	// acquirePhase labels the container-wait span: "acquire" for a fresh
	// acquisition, "prewarm" when a DAG-lookahead slot covers it — only the
	// residual (non-overlapped) wait then shows on the critical path.
	acquirePhase := "acquire"
	acquired := func(c *cluster.Container, cold bool, err error) {
		if stale() {
			if c != nil {
				w.Release(c)
			}
			return
		}
		switch {
		case errors.Is(err, cluster.ErrDeadline):
			// The deadline expired while this request sat in the acquire
			// queue; the waiter was already withdrawn node-side.
			abortDeadline(nil, "acquire")
			return
		case errors.Is(err, cluster.ErrQueueFull):
			// Backpressure shed the request; fail the step so the workflow
			// drains quickly instead of piling more work on the node.
			cancelTimeout()
			st.finished = true
			inv.failed = true
			d.shedCount++
			d.pubStep(inv, id, obs.StepFailed)
			onDone(true)
			return
		case errors.Is(err, cluster.ErrFenced):
			// Ownership moved while this request sat in the acquire queue;
			// the node refused the grant, so stand down locally too.
			cancelTimeout()
			st.finished = true
			d.fencedAcquires++
			d.fenceCheck(inv, id, "acquire")
			return
		case err != nil:
			// The node failed while this request sat in the acquire queue.
			cancelTimeout()
			d.recoverExecutor(inv, id, replica, attempt, reissue, st, attemptStart, "node-down", onDone)
			return
		}
		d.span(inv, id, replica, acquirePhase, acquireStart)
		d.issuePrewarms(inv, id)
		fetchStart := d.rt.Env.Now()
		d.fetchInputs(inv, id, workerID, func() {
			if stale() {
				w.Release(c)
				return
			}
			if d.deadlineExceeded(inv) {
				abortDeadline(c, "fetch")
				return
			}
			if d.fenceCheck(inv, id, "exec") {
				cancelTimeout()
				st.finished = true
				w.Release(c)
				return
			}
			d.span(inv, id, replica, "fetch", fetchStart)
			execStart := d.rt.Env.Now()
			w.Exec(exec, func() {
				if stale() {
					w.Release(c)
					return
				}
				if d.deadlineExceeded(inv) {
					abortDeadline(c, "exec")
					return
				}
				d.span(inv, id, replica, "exec", execStart)
				if d.fenceCheck(inv, id, "store") {
					cancelTimeout()
					st.finished = true
					w.Release(c)
					return
				}
				if d.crashes(inv, id, replica, attempt) {
					cancelTimeout()
					w.Destroy(c)
					d.crashCount++
					if attempt < d.opts.MaxAttempts {
						d.retryCount++
						d.pubStep(inv, id, obs.StepRetried)
						d.crashRetry(inv, id, replica, attempt+1, reissue, st, onDone)
						return
					}
					inv.failed = true
					d.pubStep(inv, id, obs.StepFailed)
					st.finished = true
					onDone(true)
					return
				}
				storeStart := d.rt.Env.Now()
				d.storeOutputs(inv, id, replica, workerID, func() {
					if stale() {
						w.Release(c)
						return
					}
					cancelTimeout()
					st.finished = true
					if !d.fastSpans {
						// With the fast path on, storeOutputs published
						// per-operation spans instead of this aggregate.
						d.span(inv, id, replica, "store", storeStart)
					}
					w.Release(c)
					onDone(false)
				})
			})
		})
	}
	if slot := d.takePrewarm(inv, id, workerID); slot != nil {
		if !slot.delivered && w.WarmContainers(node.Function) > 0 {
			// The pre-warm is still cold-starting but a warm container sits
			// idle: reuse the warm one — waiting out the cold start would
			// regress below feature-off behavior. The cancelled slot's
			// container joins the pool when its cold start delivers.
			d.cancelSlot(slot)
			w.AcquireOpts(node.Function, cluster.AcquireOptions{Deadline: inv.deadline, Fence: d.clusterFence(inv), Tenant: inv.tenant}, acquired)
			return
		}
		acquirePhase = "prewarm"
		d.prewarmHits++
		if slot.delivered {
			// Acquired entirely under the predecessor's execution: hand off
			// on a fresh event; the prewarm span is zero-width.
			d.rt.Env.Schedule(0, func() { acquired(slot.c, false, slot.err) })
		} else {
			// Still in flight: the residual wait from here to delivery is
			// the non-overlapped tail, published as the prewarm span.
			slot.claim = func() { acquired(slot.c, false, slot.err) }
		}
		return
	}
	w.AcquireOpts(node.Function, cluster.AcquireOptions{Deadline: inv.deadline, Fence: d.clusterFence(inv), Tenant: inv.tenant}, acquired)
}

// crashRetry re-runs an executor after an injected container crash. The
// crashed container was local, so the retry stays on the same worker and —
// without backoff — starts synchronously, preserving the immediate-retry
// event order of plain crash injection. With backoff configured, the delay
// window is published as a recovery span so attribution stays contiguous.
func (d *Deployment) crashRetry(inv *invocation, id dag.NodeID, replica, attempt, reissue int, st *execState, onDone func(failed bool)) {
	backoff := d.backoffDelay((attempt - 1) + reissue)
	if backoff == 0 {
		d.startAttempt(inv, id, replica, attempt, reissue, st, onDone)
		return
	}
	failAt := d.rt.Env.Now()
	worker := inv.place[id]
	d.rt.Env.Schedule(backoff, func() {
		if st.finished || inv.abandoned {
			return
		}
		d.pubRecovery(inv, id, replica, "crash", worker, worker, reissue, backoff, failAt)
		d.startAttempt(inv, id, replica, attempt, reissue, st, onDone)
	})
}

// recoverExecutor abandons a stranded attempt (timeout or node death) and
// re-issues the executor: re-placing the task if its worker is dead, paying
// the backoff delay, then dispatching the assignment through the
// mode-appropriate engine loop and a control message to the new worker.
func (d *Deployment) recoverExecutor(inv *invocation, id dag.NodeID, replica, attempt, reissue int, st *execState, attemptStart sim.Time, reason string, onDone func(failed bool)) {
	st.seq++ // invalidate any in-flight phase callbacks of the dead attempt
	if st.finished || inv.abandoned {
		return
	}
	if reissue >= d.opts.MaxReissues {
		st.finished = true
		inv.failed = true
		d.exhausted = append(d.exhausted, ErrReissuesExhausted{
			Workflow: d.bench.Name,
			Inv:      inv.id,
			Step:     d.g.Node(id).Name,
			Attempts: reissue,
		})
		d.pubStep(inv, id, obs.StepFailed)
		onDone(true)
		return
	}
	d.reissueCount++

	oldWorker := inv.place[id]
	if d.rt.Nodes[oldWorker].Failed() {
		d.replaceStranded(inv, oldWorker)
	}
	newWorker := inv.place[id]
	src, p := d.reissueSource(inv, id)

	backoff := d.backoffDelay((attempt - 1) + reissue + 1)
	dispatch := func() {
		if st.finished || inv.abandoned {
			return
		}
		p.process(func() {
			if st.finished || inv.abandoned {
				return
			}
			d.rt.Fabric.SendMsg(src, newWorker, d.opts.AssignMsgBytes, func() {
				if st.finished || inv.abandoned {
					return
				}
				d.pubRecovery(inv, id, replica, reason, oldWorker, newWorker, reissue+1, backoff, attemptStart)
				d.startAttempt(inv, id, replica, attempt, reissue+1, st, onDone)
			})
		})
	}
	if backoff > 0 {
		d.rt.Env.Schedule(backoff, dispatch)
	} else {
		dispatch()
	}
}

// backoffDelay computes the exponential backoff for an executor that has
// already failed `prior` times: BackoffBase doubled prior-1 times, capped
// at BackoffMax. Zero BackoffBase disables backoff entirely.
func (d *Deployment) backoffDelay(prior int) time.Duration {
	if d.opts.BackoffBase <= 0 || prior <= 0 {
		return 0
	}
	delay := d.opts.BackoffBase
	for i := 1; i < prior; i++ {
		delay *= 2
		if delay >= d.opts.BackoffMax {
			return d.opts.BackoffMax
		}
	}
	if delay > d.opts.BackoffMax {
		delay = d.opts.BackoffMax
	}
	return delay
}

// reissueSource picks the engine that re-dispatches a recovered task —
// where the trigger state for the task lives. MasterSP: always the central
// master engine. WorkerSP: the first alive predecessor's worker (the engine
// that held the State entry and originally triggered the task); the master
// steps in when the task has no predecessors or all their workers are dead.
func (d *Deployment) reissueSource(inv *invocation, id dag.NodeID) (string, *proc) {
	if d.opts.Mode == ModeMasterSP {
		return d.rt.Master, d.master
	}
	for _, pred := range d.g.Preds(id) {
		w := inv.place[pred]
		if n, ok := d.rt.Nodes[w]; ok && !n.Failed() {
			return w, d.workers[w]
		}
	}
	return d.rt.Master, d.master
}

// replaceStranded re-places every task of this invocation currently
// assigned to the dead worker onto surviving workers, cloning the
// invocation's placement first (copy-on-write) so the deployment's map —
// and other in-flight invocations — stay untouched.
func (d *Deployment) replaceStranded(inv *invocation, dead string) {
	if !inv.ownPlace {
		clone := make(map[dag.NodeID]string, len(inv.place))
		for k, v := range inv.place {
			clone[k] = v
		}
		inv.place = clone
		inv.ownPlace = true
	}
	for _, n := range d.g.Nodes() {
		if inv.place[n.ID] != dead {
			continue
		}
		nw := d.pickReplacement(inv, n.ID)
		if nw == "" {
			continue // no survivor; re-issues will keep failing until recovery
		}
		inv.place[n.ID] = nw
		d.replaceCount++
		d.pubStep(inv, n.ID, obs.StepReplaced)
	}
}

// SetAvoid installs a predicate excluding workers from fault re-placement
// even though they have not failed (yet) — typically nodes inside a
// scheduled NodeDown window (see faults.Injector.NodeDownAt), so a
// stranded task is not re-placed onto a node about to die. When every
// candidate is excluded the predicate is ignored: a doomed placement still
// beats none, and the next death re-places again.
func (d *Deployment) SetAvoid(fn func(worker string) bool) { d.avoid = fn }

// pickReplacement scores surviving workers for a stranded task by graph
// locality — how many of the task's neighbors (predecessors and successors)
// are placed there — echoing the Graph Scheduler's edge-weight objective.
// Ties break on sorted node order, keeping re-placement deterministic.
func (d *Deployment) pickReplacement(inv *invocation, id dag.NodeID) string {
	if best := d.pickReplacementFiltered(inv, id, d.avoid); best != "" {
		return best
	}
	if d.avoid == nil {
		return ""
	}
	// Every survivor sits inside a fault window; fall back to ignoring it.
	return d.pickReplacementFiltered(inv, id, nil)
}

func (d *Deployment) pickReplacementFiltered(inv *invocation, id dag.NodeID, avoid func(string) bool) string {
	best := ""
	bestScore := -1
	neighbors := append(append([]dag.NodeID{}, d.g.Preds(id)...), d.g.Succs(id)...)
	for _, cand := range d.nodeOrder {
		if cand == d.rt.Master {
			continue
		}
		n := d.rt.Nodes[cand]
		if n == nil || n.Failed() {
			continue
		}
		if avoid != nil && avoid(cand) {
			continue
		}
		score := 0
		for _, nb := range neighbors {
			if inv.place[nb] == cand {
				score++
			}
		}
		if score > bestScore {
			best, bestScore = cand, score
		}
	}
	return best
}

// pubRecovery publishes a RecoveryEvent and, when the recovery window has
// width, a CompRecovery phase span covering it — [spanFrom, now] — so the
// critical-path walk attributes fault-recovery time contiguously instead of
// leaving an unattributed gap. For crashes spanFrom is the crash instant
// (the backoff window only; the failed attempt's own phases were real work
// and stay attributed as such); for timeouts and node deaths it is the
// abandoned attempt's start, charging the whole wasted attempt to recovery.
func (d *Deployment) pubRecovery(inv *invocation, id dag.NodeID, replica int, reason, oldWorker, newWorker string, reissue int, backoff time.Duration, spanFrom sim.Time) {
	if !d.obs.Active() {
		return
	}
	now := d.rt.Env.Now()
	node := d.g.Node(id)
	d.obs.Publish(obs.RecoveryEvent{
		Workflow:  d.bench.Name,
		Inv:       inv.id,
		Node:      int(id),
		Name:      node.Name,
		Replica:   replica,
		Reason:    reason,
		OldWorker: oldWorker,
		NewWorker: newWorker,
		Reissue:   reissue,
		Backoff:   backoff,
		Start:     spanFrom,
		At:        now,
	})
	if now > spanFrom {
		d.obs.Publish(obs.PhaseEvent{
			Workflow: d.bench.Name,
			Inv:      inv.id,
			Node:     int(id),
			Name:     node.Name,
			Replica:  replica,
			Comp:     obs.CompRecovery,
			Worker:   newWorker,
			Start:    spanFrom,
			End:      now,
		})
	}
}
