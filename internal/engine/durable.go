package engine

import (
	"sort"

	"repro/internal/dag"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/sim"
)

// This file implements durable execution (the Durable Functions / Netherite
// recipe adapted to FaaSFlow's two scheduling patterns). With
// Options.Journal set, every task node's completion is appended to a
// write-ahead journal before its state update propagates — the step is
// "committed" once the journal batch syncs. CrashEngine models the engine
// process dying: all in-flight invocations are orphaned and the journal
// loses its un-synced tail. RestartEngine replays the journal per live
// invocation, rebuilds the DAG frontier (committed steps are skipped, skip
// waves re-derived from the invocation arguments), and re-dispatches only
// the uncommitted cut — through the mode-appropriate engine loop, with the
// crash-to-redispatch dead time attributed to CompReplay on the critical
// path.

// reexecKey identifies one producer re-execution slot.
type reexecKey struct {
	inv  int64
	node dag.NodeID
}

// commitStep appends a step-completion record to the journal and defers the
// step's state propagation to the record's durable instant. A duplicate
// (the step already committed, e.g. a lost-input producer re-run) is
// dropped by the journal and continues immediately.
func (d *Deployment) commitStep(inv *invocation, id dag.NodeID, attemptSeq int, onDone func(failed bool)) {
	commitStart := d.rt.Env.Now()
	var outKeys []string
	width := d.g.Node(id).Width
	for _, out := range d.outputs[id] {
		for rep := 0; rep < width; rep++ {
			outKeys = append(outKeys, d.key(inv, out.edgeIdx, rep))
		}
	}
	d.jr.Append(journal.Record{
		Workflow:   d.bench.Name,
		Inv:        inv.id,
		Step:       int(id),
		AttemptSeq: attemptSeq,
		Tenant:     inv.tenant,
		Outputs:    outKeys,
	}, func(sim.Time) {
		if inv.abandoned {
			return
		}
		d.span(inv, id, 0, "commit", commitStart)
		d.pubStep(inv, id, obs.StepCommitted)
		onDone(false)
	})
}

// reexecProducer re-runs a committed producer whose only surviving output
// copy was lost (node death without enough replicas). Concurrent consumers
// of the same producer coalesce onto one re-run; the producer's re-commit
// is dropped by the journal's idempotency guard.
func (d *Deployment) reexecProducer(inv *invocation, id dag.NodeID, resume func()) {
	key := reexecKey{inv.id, id}
	if waiters, busy := d.reexec[key]; busy {
		d.reexec[key] = append(waiters, resume)
		return
	}
	d.reexec[key] = []func(){resume}
	d.reexecCount++
	d.pubStep(inv, id, obs.StepReplayed)
	d.runTask(inv, id, func(bool) {
		waiters := d.reexec[key]
		delete(d.reexec, key)
		for _, w := range waiters {
			w()
		}
	})
}

// liveInvIDs returns the in-flight invocation IDs, ascending.
func (d *Deployment) liveInvIDs() []int64 {
	ids := make([]int64, 0, len(d.liveInvs))
	for id := range d.liveInvs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// CrashEngine models the engine process dying. The journal loses its
// un-synced tail (torn-tail truncation), every in-flight invocation is
// orphaned — executors and engine-loop callbacks holding them bail at the
// next boundary — and new invocations queue until RestartEngine. No-op
// without a journal: a non-durable engine cannot recover, so the fault is
// not modeled.
func (d *Deployment) CrashEngine() {
	if d.jr == nil || d.down {
		return
	}
	d.down = true
	d.crashedAt = d.rt.Env.Now()
	d.engineCrashes++
	d.jr.Crash()
	for _, id := range d.liveInvIDs() {
		inv := d.liveInvs[id]
		inv.abandoned = true
		// Orphaned pre-warm slots would hold containers forever (the
		// executor that was to claim them bails at its next boundary).
		d.drainPrewarms(inv)
	}
	d.reexec = map[reexecKey][]func(){}
	if d.obs.Active() {
		d.obs.Publish(obs.EngineFaultEvent{
			Workflow: d.bench.Name,
			Down:     true,
			At:       d.rt.Env.Now(),
		})
	}
}

// EngineDown reports whether the engine is crashed (durable mode only).
func (d *Deployment) EngineDown() bool { return d.down }

// RestartEngine brings a crashed engine back: every live invocation is
// rebuilt from the journal and its uncommitted frontier re-dispatched.
func (d *Deployment) RestartEngine() {
	if d.jr == nil || !d.down {
		return
	}
	d.down = false
	replayedBefore, redispatchedBefore := d.replaySkips, d.redispatched
	for _, id := range d.liveInvIDs() {
		d.replayInvocation(d.liveInvs[id])
	}
	if d.obs.Active() {
		d.obs.Publish(obs.EngineFaultEvent{
			Workflow:     d.bench.Name,
			Down:         false,
			Replayed:     int(d.replaySkips - replayedBefore),
			Redispatched: int(d.redispatched - redispatchedBefore),
			At:           d.rt.Env.Now(),
		})
	}
}

// replayInvocation rebuilds one invocation's trigger state from the journal
// and re-dispatches its frontier. The orphaned invocation object is
// replaced by a fresh one (same ID, done callback, and step attempt
// counters) so stale callbacks from before the crash can never touch the
// resumed run.
func (d *Deployment) replayInvocation(old *invocation) {
	d.resumeInvocation(old, d.jr.CommittedSteps(old.id), obs.CompReplay)
}

// resumeInvocation is the shared replay core: rebuild trigger state from a
// committed-step map and re-dispatch the uncommitted cut. comp labels the
// dead-time attribution — CompReplay for a same-engine restart, CompHandoff
// when a successor engine resumes a claimed invocation (the committed map
// then unions every federation member's journal).
func (d *Deployment) resumeInvocation(old *invocation, committed map[int]journal.Entry, comp obs.Component) {
	fresh := &invocation{
		id:        old.id,
		version:   old.version,
		place:     d.place,
		start:     old.start,
		args:      old.args,
		deadline:  old.deadline,
		tenant:    old.tenant,
		predsDone: make([]int, d.g.Len()),
		realIn:    make([]int, d.g.Len()),
		started:   make([]bool, d.g.Len()),
		sinksLeft: len(d.sinks),
		done:      old.done,
		keys:      old.keys,
		stepSeq:   old.stepSeq,
		reexecs:   old.reexecs,
	}
	d.liveInvs[old.id] = fresh
	topo, err := d.g.TopoSort()
	if err != nil {
		return // unreachable: the graph was validated acyclic at deploy
	}
	edges := d.g.Edges()
	for _, id := range topo {
		if _, ok := committed[int(id)]; ok {
			// Committed: the step's outputs are durable — skip re-execution
			// and forward its state updates, re-deriving switch skips from
			// the invocation arguments (deterministic).
			fresh.started[id] = true
			d.replaySkips++
			skipped := d.skippedOutEdges(fresh, id)
			for _, ei := range d.g.OutEdges(id) {
				succ := edges[ei].To
				fresh.predsDone[succ]++
				if !skipped[ei] {
					fresh.realIn[succ]++
				}
			}
			if d.g.OutDegree(id) == 0 {
				fresh.sinksLeft--
			}
			continue
		}
		if d.g.InDegree(id) > 0 && fresh.predsDone[id] == d.g.InDegree(id) && fresh.realIn[id] == 0 {
			// Resolved entirely by skips: forward the skip wave without
			// executing, exactly as the live path would have.
			fresh.started[id] = true
			for _, ei := range d.g.OutEdges(id) {
				fresh.predsDone[edges[ei].To]++
			}
			if d.g.OutDegree(id) == 0 {
				fresh.sinksLeft--
			}
			continue
		}
	}
	if fresh.sinksLeft == 0 {
		// The crash hit after the last commit but before the completion
		// bookkeeping: one master slot finishes the invocation.
		d.master.process(func() {
			if !fresh.abandoned {
				d.finishInvocation(fresh)
			}
		})
		return
	}
	// The frontier: unresolved nodes whose predecessors are all resolved —
	// sources, or steps whose committed predecessors were mid-trigger (or
	// mid-execution) at the crash.
	for _, id := range topo {
		if fresh.started[id] || fresh.predsDone[id] != d.g.InDegree(id) {
			continue
		}
		d.redispatchStep(fresh, id, committed, comp)
	}
}

// redispatchStep re-issues one frontier step through the mode-appropriate
// engine loop. The trigger chain opens with a comp (CompReplay or
// CompHandoff) segment spanning from the binding committed predecessor's
// durable instant (or the invocation start) to the dispatch slot — the
// crash's or failover's dead time, which the critical-path walk then
// attributes contiguously.
func (d *Deployment) redispatchStep(inv *invocation, id dag.NodeID, committed map[int]journal.Entry, comp obs.Component) {
	from := -1
	replayFrom := inv.start
	for _, pred := range d.g.Preds(id) {
		if e, ok := committed[int(pred)]; ok && (from == -1 || e.At > replayFrom) {
			from = int(pred)
			replayFrom = e.At
		}
	}
	d.redispatched++
	switch d.opts.Mode {
	case ModeMasterSP:
		var enq, st, done sim.Time
		enq, st, done = d.master.process(func() {
			if inv.abandoned {
				return
			}
			d.pubStep(inv, id, obs.StepReplayed)
			d.mspAssign(inv, id, from, d.chainProc(d.replaySeg(comp, replayFrom, enq), enq, st, done))
		})
	default: // ModeWorkerSP: the master re-delivers the assignment to the
		// worker whose engine owns the step, like the initial invocation.
		var enq, st, done sim.Time
		enq, st, done = d.master.process(func() {
			if inv.abandoned {
				return
			}
			d.pubStep(inv, id, obs.StepReplayed)
			pre := d.chainProc(d.replaySeg(comp, replayFrom, enq), enq, st, done)
			sendAt := d.rt.Env.Now()
			d.rt.Fabric.SendMsg(d.rt.Master, inv.place[id], d.opts.AssignMsgBytes, func() {
				d.wspTrigger(inv, id, from, d.chainTransfer(pre, sendAt, d.rt.Env.Now()))
			})
		})
	}
}

// replaySeg builds the replay/handoff chain prefix covering [from, to).
func (d *Deployment) replaySeg(comp obs.Component, from, to sim.Time) []obs.Segment {
	if !d.obs.Active() || to <= from {
		return nil
	}
	return []obs.Segment{{Comp: comp, Start: from, End: to}}
}

// Journal exposes the deployment's write-ahead log (nil when not durable).
func (d *Deployment) Journal() *journal.WAL { return d.jr }

// DurableStats aggregates the durable-execution counters.
type DurableStats struct {
	// EngineCrashes counts CrashEngine calls.
	EngineCrashes int64
	// ReplaySkips counts committed steps a restart skipped re-executing.
	ReplaySkips int64
	// Redispatched counts frontier steps a restart re-issued.
	Redispatched int64
	// LostInputs counts input fetches that missed because every replica of
	// a committed producer's output died with its node.
	LostInputs int64
	// Reexecs counts committed producers re-executed to regenerate lost
	// outputs (zero when replication keeps a surviving copy).
	Reexecs int64
	// Adopted counts invocations this engine resumed after claiming them
	// from a federation peer whose lease expired.
	Adopted int64
	// FencedSteps counts engine-side epoch-fence rejections: dispatches and
	// executor phase boundaries where this engine learned it lost the
	// invocation's shard.
	FencedSteps int64
	// FencedAcquires counts container acquisitions the cluster rejected
	// with ErrFenced.
	FencedAcquires int64
	// Journal carries the write-ahead log's own counters.
	Journal journal.Stats
}

// DurableStatsSnapshot reports current durable-execution counters (zero
// values when the deployment has no journal).
func (d *Deployment) DurableStatsSnapshot() DurableStats {
	st := DurableStats{
		EngineCrashes:  d.engineCrashes,
		ReplaySkips:    d.replaySkips,
		Redispatched:   d.redispatched,
		LostInputs:     d.lostInputs,
		Reexecs:        d.reexecCount,
		Adopted:        d.adopted,
		FencedSteps:    d.fencedSteps,
		FencedAcquires: d.fencedAcquires,
	}
	if d.jr != nil {
		st.Journal = d.jr.Stats()
	}
	return st
}
