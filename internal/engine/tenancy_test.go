package engine

import (
	"testing"
	"time"

	"repro/internal/journal"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/sim"
)

// TestTenantThreadsThroughEventsAndJournal runs one tenant-attributed
// invocation in both modes and asserts the label survives the whole path:
// every InvocationEvent and every committed journal record carries it.
func TestTenantThreadsThroughEventsAndJournal(t *testing.T) {
	for _, mode := range []Mode{ModeWorkerSP, ModeMasterSP} {
		rt := rig(2, network.MBps(50))
		d := durableDeploy(t, rt, mode)
		bus := obs.NewBus()
		var invEvents []obs.InvocationEvent
		bus.Subscribe(func(ev obs.Event) {
			if e, ok := ev.(obs.InvocationEvent); ok {
				invEvents = append(invEvents, e)
			}
		})
		d.SetObserver(bus)
		var res Result
		got := false
		d.InvokeOpts(InvokeOptions{Tenant: "acme"}, func(r Result) { res, got = r, true })
		rt.Env.Run()
		if !got || res.Failed {
			t.Fatalf("%v: invocation did not complete cleanly (got=%v res=%+v)", mode, got, res)
		}
		if len(invEvents) == 0 {
			t.Fatalf("%v: no invocation events", mode)
		}
		for _, e := range invEvents {
			if e.Tenant != "acme" {
				t.Fatalf("%v: invocation event lost tenant: %+v", mode, e)
			}
		}
		entries := d.Journal().Entries()
		if len(entries) == 0 {
			t.Fatalf("%v: no journal entries", mode)
		}
		for _, en := range entries {
			if en.Tenant != "acme" {
				t.Fatalf("%v: journal record lost tenant: %+v", mode, en.Record)
			}
		}
	}
}

// TestUntenantedInvocationUnchanged pins the compatibility contract: with
// no tenant set, events and journal records carry the empty tenant.
func TestUntenantedInvocationUnchanged(t *testing.T) {
	rt := rig(2, network.MBps(50))
	d := durableDeploy(t, rt, ModeWorkerSP)
	res := run(t, rt, d)
	if res.Failed {
		t.Fatal("invocation failed")
	}
	for _, en := range d.Journal().Entries() {
		if en.Tenant != "" {
			t.Fatalf("untenanted run produced tenant-labelled record: %+v", en.Record)
		}
	}
}

// TestAdoptionPreservesTenant crashes the owning engine before any step
// commits and adopts the invocation on a second engine with the tenant
// carried in the AdoptSpec (as the federation does): the resumed steps'
// journal records and events on the adopter must keep the label.
func TestAdoptionPreservesTenant(t *testing.T) {
	rt := rig(2, network.MBps(50))
	b := miniBench()
	jrA := journal.New(rt.Env, journal.Config{})
	jrB := journal.New(rt.Env, journal.Config{})
	place := placeRoundRobin(b, "w0", "w1")
	dA, err := NewDeployment(rt, b, place, Options{Mode: ModeWorkerSP, Data: DataStore, Journal: jrA})
	if err != nil {
		t.Fatal(err)
	}
	dB, err := NewDeployment(rt, b, place, Options{Mode: ModeWorkerSP, Data: DataStore, Journal: jrB})
	if err != nil {
		t.Fatal(err)
	}
	bus := obs.NewBus()
	var tenants []string
	bus.Subscribe(func(ev obs.Event) {
		if e, ok := ev.(obs.InvocationEvent); ok {
			tenants = append(tenants, e.Tenant)
		}
	})
	dB.SetObserver(bus)

	got := false
	done := func(r Result) { got = true }
	dA.InvokeOpts(InvokeOptions{Tenant: "acme"}, done)
	// Crash A inside source a's cold start: nothing has committed yet, so
	// the adopter re-dispatches the whole invocation.
	rt.Env.RunUntil(sim.Time(time.Millisecond))
	dA.CrashEngine()
	dA.DropInvocations(dA.LiveInvocationIDs())

	view := journal.NewView(jrA, jrB)
	dB.AdoptInvocation(AdoptSpec{ID: 0, Start: 0, Tenant: "acme", Done: done},
		view.CommittedSteps(0))
	rt.Env.Run()
	if !got {
		t.Fatal("adopted invocation never completed")
	}
	entries := jrB.Entries()
	if len(entries) == 0 {
		t.Fatal("adopter committed nothing")
	}
	for _, en := range entries {
		if en.Tenant != "acme" {
			t.Fatalf("adopted journal record lost tenant: %+v", en.Record)
		}
	}
	if len(tenants) == 0 {
		t.Fatal("adopter published no invocation events")
	}
	for _, tn := range tenants {
		if tn != "acme" {
			t.Fatal("adopter invocation event lost tenant")
		}
	}
}
