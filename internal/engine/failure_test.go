package engine

import (
	"testing"

	"repro/internal/network"
)

func TestNoFailuresByDefault(t *testing.T) {
	rt := rig(2, network.MBps(50))
	b := miniBench()
	d, err := NewDeployment(rt, b, placeRoundRobin(b, "w0", "w1"), Options{Mode: ModeWorkerSP, Data: DataStore})
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, rt, d)
	if res.Failed {
		t.Fatal("invocation failed without injection")
	}
	if d.Crashes() != 0 || d.Retries() != 0 {
		t.Fatalf("crashes=%d retries=%d without injection", d.Crashes(), d.Retries())
	}
}

func TestRetriesRecoverFromCrashes(t *testing.T) {
	rt := rig(2, network.MBps(50))
	b := miniBench()
	d, err := NewDeployment(rt, b, placeRoundRobin(b, "w0", "w1"),
		Options{Mode: ModeWorkerSP, Data: DataStore, FailureRate: 0.3, MaxAttempts: 10})
	if err != nil {
		t.Fatal(err)
	}
	succeeded, failed := 0, 0
	for i := 0; i < 25; i++ {
		d.Invoke(func(r Result) {
			if r.Failed {
				failed++
			} else {
				succeeded++
			}
		})
		rt.Env.Run()
	}
	if succeeded+failed != 25 {
		t.Fatalf("completed %d/25", succeeded+failed)
	}
	// With 10 attempts at 30% failure, effectively everything succeeds.
	if failed != 0 {
		t.Fatalf("%d invocations failed despite generous retries", failed)
	}
	if d.Crashes() == 0 || d.Retries() == 0 {
		t.Fatalf("no crashes (%d) or retries (%d) despite 30%% rate", d.Crashes(), d.Retries())
	}
	if d.Retries() != d.Crashes() {
		t.Fatalf("retries %d != crashes %d when nothing exhausts", d.Retries(), d.Crashes())
	}
}

func TestExhaustedRetriesFailButDrain(t *testing.T) {
	for _, mode := range []Mode{ModeWorkerSP, ModeMasterSP} {
		rt := rig(2, network.MBps(50))
		b := miniBench()
		d, err := NewDeployment(rt, b, placeRoundRobin(b, "w0", "w1"),
			Options{Mode: mode, Data: DataStore, FailureRate: 1.0, MaxAttempts: 2})
		if err != nil {
			t.Fatal(err)
		}
		var res Result
		got := false
		d.Invoke(func(r Result) { res = r; got = true })
		rt.Env.Run()
		if !got {
			t.Fatalf("%v: all-crash invocation hung instead of draining", mode)
		}
		if !res.Failed {
			t.Fatalf("%v: Result.Failed = false under 100%% crash rate", mode)
		}
		if d.Crashes() == 0 {
			t.Fatalf("%v: no crashes recorded", mode)
		}
	}
}

func TestFailureKeepsStoreClean(t *testing.T) {
	rt := rig(2, network.MBps(50))
	b := miniBench()
	d, err := NewDeployment(rt, b, placeRoundRobin(b, "w0", "w1"),
		Options{Mode: ModeWorkerSP, Data: DataStore, FailureRate: 0.5, MaxAttempts: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		d.Invoke(nil)
	}
	rt.Env.Run()
	if n := rt.Store.Remote().Len(); n != 0 {
		t.Fatalf("%d keys leaked across failing invocations", n)
	}
}

func TestCrashedContainersAreDestroyed(t *testing.T) {
	rt := rig(1, network.MBps(50))
	b := miniBench()
	d, err := NewDeployment(rt, b, placeAll(b, "w0"),
		Options{Mode: ModeWorkerSP, Data: DataNone, FailureRate: 1.0, MaxAttempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	d.Invoke(nil)
	rt.Env.Run()
	// Every container crashed; none should sit warm in the pools.
	if got := rt.Nodes["w0"].Containers(); got != 0 {
		t.Fatalf("%d crashed containers still alive", got)
	}
}

func TestFailureDeterminism(t *testing.T) {
	runOnce := func() (int64, int64) {
		rt := rig(2, network.MBps(50))
		b := miniBench()
		d, err := NewDeployment(rt, b, placeRoundRobin(b, "w0", "w1"),
			Options{Mode: ModeWorkerSP, Data: DataStore, FailureRate: 0.4, MaxAttempts: 5})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			d.Invoke(nil)
		}
		rt.Env.Run()
		return d.Crashes(), d.Retries()
	}
	c1, r1 := runOnce()
	c2, r2 := runOnce()
	if c1 != c2 || r1 != r2 {
		t.Fatalf("failure injection nondeterministic: (%d,%d) vs (%d,%d)", c1, r1, c2, r2)
	}
}
