package engine

import (
	"repro/internal/dag"
	"repro/internal/obs"
	"repro/internal/sim"
)

// This file implements the WorkerSP pattern (paper §3.1, Figure 6): each
// worker's engine maintains State (predecessors-done counters) for its
// local sub-graph and triggers functions locally. Completions propagate as
// state-update messages — an inner RPC when the successor lives on the
// same worker, a cross-worker TCP message otherwise. The master appears
// only twice per invocation: delivering the invocation to the source
// nodes' workers and collecting sink completions.
//
// Switch steps add a skip wave: a state update is either "done" or
// "skipped"; a node whose predecessors all completed but none for real is
// itself skipped — it runs nothing and forwards the skip.
//
// When a bus is attached, every causal hop threads a trigger-chain prefix
// (pre) forward: the completion proc's queue+schedule segments, then the
// fabric transfer, then the arrival proc's segments, published as one
// chain the instant the destination's trigger resolves.

func (d *Deployment) invokeWorkerSP(inv *invocation) {
	// The client's request lands at the master/gateway, which notifies the
	// worker hosting each source node of the new InvocationID.
	var enq, st, done sim.Time
	enq, st, done = d.master.process(func() {
		if inv.abandoned {
			return
		}
		pre := d.chainProc(nil, enq, st, done)
		for _, src := range d.sources {
			src := src
			w := inv.place[src]
			sendAt := d.rt.Env.Now()
			d.rt.Fabric.SendMsg(d.rt.Master, w, d.opts.AssignMsgBytes, func() {
				d.wspTrigger(inv, src, -1, d.chainTransfer(pre, sendAt, d.rt.Env.Now()))
			})
		}
	})
}

// wspTrigger runs on the engine of the worker hosting id, whose trigger
// condition is already satisfied. from/pre carry the trigger chain built
// up to the message arrival.
func (d *Deployment) wspTrigger(inv *invocation, id dag.NodeID, from int, pre []obs.Segment) {
	w := inv.place[id]
	var enq, st, done sim.Time
	enq, st, done = d.workers[w].process(func() {
		if inv.started[id] || inv.abandoned {
			return
		}
		inv.started[id] = true
		d.publishChain(inv, from, int(id), d.chainProc(pre, enq, st, done))
		if d.deadlineExceeded(inv) {
			// Dead on arrival: drain as a skip instead of running — no
			// container is acquired, and the skip wave cancels downstream.
			d.failDeadline(inv, id, "trigger")
			d.wspComplete(inv, id, true)
			return
		}
		d.pubStep(inv, id, obs.StepTriggered)
		d.runTask(inv, id, func(failed bool) { d.wspComplete(inv, id, failed) })
	})
}

// wspComplete records id's completion (or skip) on its local engine and
// propagates the state to every successor's engine.
func (d *Deployment) wspComplete(inv *invocation, id dag.NodeID, nodeSkipped bool) {
	w := inv.place[id]
	var enq, st, done sim.Time
	enq, st, done = d.workers[w].process(func() {
		if inv.abandoned {
			return
		}
		if nodeSkipped {
			// The step resolved without running: any containers pre-warmed
			// for it will never be claimed.
			d.cancelPrewarms(inv, id)
			d.pubStep(inv, id, obs.StepSkipped)
		} else {
			d.pubStep(inv, id, obs.StepCompleted)
		}
		pre := d.chainProc(nil, enq, st, done)
		if d.g.OutDegree(id) == 0 {
			// A sink: report completion to the master, which finishes the
			// invocation when all sinks have reported. Skipped sinks count
			// too — the workflow is done when nothing remains to run.
			sendAt := d.rt.Env.Now()
			d.rt.Fabric.SendMsg(w, d.rt.Master, d.opts.StateMsgBytes, func() {
				segs := d.chainTransfer(pre, sendAt, d.rt.Env.Now())
				var e2, s2, d2 sim.Time
				e2, s2, d2 = d.master.process(func() {
					if inv.abandoned {
						return
					}
					inv.sinksLeft--
					if inv.sinksLeft == 0 {
						d.publishChain(inv, int(id), -1, d.chainProc(segs, e2, s2, d2))
						d.finishInvocation(inv)
					}
				})
			})
			return
		}
		skipped := d.skippedOutEdges(inv, id)
		for _, ei := range d.g.OutEdges(id) {
			succ := d.g.Edges()[ei].To
			skip := nodeSkipped || skipped[ei]
			// Same worker → inner RPC (loopback); different worker →
			// cross-node TCP. The fabric models both through SendMsg.
			sendAt := d.rt.Env.Now()
			d.rt.Fabric.SendMsg(w, inv.place[succ], d.opts.StateMsgBytes, func() {
				d.wspStateArrive(inv, succ, skip, int(id), d.chainTransfer(pre, sendAt, d.rt.Env.Now()))
			})
		}
	})
}

// wspStateArrive applies one predecessor update on the successor's engine
// and triggers it once PredecessorsDone reaches PredecessorsCount. When
// every predecessor completion was a skip, the node is skipped in turn.
func (d *Deployment) wspStateArrive(inv *invocation, succ dag.NodeID, skip bool, from int, pre []obs.Segment) {
	sw := inv.place[succ]
	var enq, st, done sim.Time
	enq, st, done = d.workers[sw].process(func() {
		if inv.abandoned {
			return
		}
		inv.predsDone[succ]++
		if !skip {
			inv.realIn[succ]++
		}
		if inv.predsDone[succ] == d.g.InDegree(succ) && !inv.started[succ] {
			inv.started[succ] = true
			d.publishChain(inv, from, int(succ), d.chainProc(pre, enq, st, done))
			if inv.realIn[succ] == 0 {
				// Entirely skipped: forward the skip without executing.
				d.wspComplete(inv, succ, true)
				return
			}
			if d.deadlineExceeded(inv) {
				d.failDeadline(inv, succ, "trigger")
				d.wspComplete(inv, succ, true)
				return
			}
			d.pubStep(inv, succ, obs.StepTriggered)
			d.runTask(inv, succ, func(failed bool) { d.wspComplete(inv, succ, failed) })
		}
	})
}
