package engine

import "repro/internal/dag"

// This file implements the WorkerSP pattern (paper §3.1, Figure 6): each
// worker's engine maintains State (predecessors-done counters) for its
// local sub-graph and triggers functions locally. Completions propagate as
// state-update messages — an inner RPC when the successor lives on the
// same worker, a cross-worker TCP message otherwise. The master appears
// only twice per invocation: delivering the invocation to the source
// nodes' workers and collecting sink completions.
//
// Switch steps add a skip wave: a state update is either "done" or
// "skipped"; a node whose predecessors all completed but none for real is
// itself skipped — it runs nothing and forwards the skip.

func (d *Deployment) invokeWorkerSP(inv *invocation) {
	// The client's request lands at the master/gateway, which notifies the
	// worker hosting each source node of the new InvocationID.
	d.master.process(func() {
		for _, src := range d.sources {
			src := src
			w := inv.place[src]
			d.rt.Fabric.SendMsg(d.rt.Master, w, d.opts.AssignMsgBytes, func() {
				d.wspTrigger(inv, src)
			})
		}
	})
}

// wspTrigger runs on the engine of the worker hosting id, whose trigger
// condition is already satisfied.
func (d *Deployment) wspTrigger(inv *invocation, id dag.NodeID) {
	w := inv.place[id]
	d.workers[w].process(func() {
		if inv.started[id] {
			return
		}
		inv.started[id] = true
		d.runTask(inv, id, func(failed bool) { d.wspComplete(inv, id, failed) })
	})
}

// wspComplete records id's completion (or skip) on its local engine and
// propagates the state to every successor's engine.
func (d *Deployment) wspComplete(inv *invocation, id dag.NodeID, nodeSkipped bool) {
	w := inv.place[id]
	d.workers[w].process(func() {
		if d.g.OutDegree(id) == 0 {
			// A sink: report completion to the master, which finishes the
			// invocation when all sinks have reported. Skipped sinks count
			// too — the workflow is done when nothing remains to run.
			d.rt.Fabric.SendMsg(w, d.rt.Master, d.opts.StateMsgBytes, func() {
				d.master.process(func() {
					inv.sinksLeft--
					if inv.sinksLeft == 0 {
						d.finishInvocation(inv)
					}
				})
			})
			return
		}
		skipped := d.skippedOutEdges(inv, id)
		for _, ei := range d.g.OutEdges(id) {
			succ := d.g.Edges()[ei].To
			skip := nodeSkipped || skipped[ei]
			// Same worker → inner RPC (loopback); different worker →
			// cross-node TCP. The fabric models both through SendMsg.
			d.rt.Fabric.SendMsg(w, inv.place[succ], d.opts.StateMsgBytes, func() {
				d.wspStateArrive(inv, succ, skip)
			})
		}
	})
}

// wspStateArrive applies one predecessor update on the successor's engine
// and triggers it once PredecessorsDone reaches PredecessorsCount. When
// every predecessor completion was a skip, the node is skipped in turn.
func (d *Deployment) wspStateArrive(inv *invocation, succ dag.NodeID, skip bool) {
	sw := inv.place[succ]
	d.workers[sw].process(func() {
		inv.predsDone[succ]++
		if !skip {
			inv.realIn[succ]++
		}
		if inv.predsDone[succ] == d.g.InDegree(succ) && !inv.started[succ] {
			inv.started[succ] = true
			if inv.realIn[succ] == 0 {
				// Entirely skipped: forward the skip without executing.
				d.wspComplete(inv, succ, true)
				return
			}
			d.runTask(inv, succ, func(failed bool) { d.wspComplete(inv, succ, failed) })
		}
	})
}
