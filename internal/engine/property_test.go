package engine

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/dag"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// randomBench builds a random DAG benchmark (forward edges only).
func randomBench(seed uint64, n int) *workloads.Benchmark {
	rng := sim.NewRand(seed)
	g := dag.New("rand")
	fns := map[string]workloads.FunctionSpec{}
	for i := 0; i < n; i++ {
		fn := fmt.Sprintf("f%d", rng.Intn(3))
		g.AddTask(fmt.Sprintf("n%d", i), fn)
		if _, ok := fns[fn]; !ok {
			fns[fn] = workloads.FunctionSpec{Name: fn, ExecSeconds: 0.01 + 0.05*rng.Float64(), MemPeak: 64 << 20}
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.3 {
				g.Connect(dag.NodeID(i), dag.NodeID(j), int64(rng.Intn(1<<18)))
			}
		}
	}
	return &workloads.Benchmark{Name: "rand", Graph: g, Functions: fns, MonolithicBytes: 1}
}

// Property: for any random DAG under either pattern, every task node
// executes exactly once per invocation (verified through the tracer) and
// all intermediate keys are released afterwards.
func TestEveryTaskRunsExactlyOnceProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8, masterMode bool) bool {
		n := int(nRaw%12) + 2
		bench := randomBench(seed, n)
		mode := ModeWorkerSP
		if masterMode {
			mode = ModeMasterSP
		}
		rt := rig(3, network.MBps(50))
		place := placeRoundRobin(bench, "w0", "w1", "w2")
		d, err := NewDeployment(rt, bench, place, Options{Mode: mode, Data: DataStore})
		if err != nil {
			return false
		}
		tr := NewTracer()
		d.SetTracer(tr)
		completed := false
		d.Invoke(func(Result) { completed = true })
		rt.Env.Run()
		if !completed {
			return false
		}
		execs := map[string]int{}
		for _, e := range tr.Events() {
			if e.Phase == "exec" {
				execs[e.Node]++
			}
		}
		if len(execs) != n {
			return false
		}
		for _, c := range execs {
			if c != 1 {
				return false
			}
		}
		return rt.Store.Remote().Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: both patterns produce the same execution set (they differ in
// when, never in what) — same nodes, same per-node exec counts.
func TestPatternsExecuteSameWorkProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%10) + 2
		execSet := func(mode Mode) map[string]int {
			bench := randomBench(seed, n)
			rt := rig(2, network.MBps(50))
			d, err := NewDeployment(rt, bench, placeRoundRobin(bench, "w0", "w1"), Options{Mode: mode, Data: DataStore})
			if err != nil {
				return nil
			}
			tr := NewTracer()
			d.SetTracer(tr)
			d.Invoke(nil)
			rt.Env.Run()
			out := map[string]int{}
			for _, e := range tr.Events() {
				if e.Phase == "exec" {
					out[e.Node]++
				}
			}
			return out
		}
		w, m := execSet(ModeWorkerSP), execSet(ModeMasterSP)
		if w == nil || m == nil || len(w) != len(m) {
			return false
		}
		for k, v := range w {
			if m[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: invocation latency is never below the critical-path execution
// time, with jitter disabled, for any random DAG and pattern.
func TestLatencyLowerBoundProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8, masterMode bool) bool {
		n := int(nRaw%10) + 2
		bench := randomBench(seed, n)
		mode := ModeWorkerSP
		if masterMode {
			mode = ModeMasterSP
		}
		rt := rig(3, network.MBps(50))
		d, err := NewDeployment(rt, bench, placeRoundRobin(bench, "w0", "w1", "w2"),
			Options{Mode: mode, Data: DataStore, NoJitter: true})
		if err != nil {
			return false
		}
		var lat float64
		d.Invoke(func(r Result) { lat = r.Latency().Seconds() })
		rt.Env.Run()
		return lat >= d.CriticalExecSeconds()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
