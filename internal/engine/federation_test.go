package engine

import (
	"testing"
	"time"

	"repro/internal/journal"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/sim"
)

// TestFenceRejectsStaleOwner flips the ownership fence while an
// invocation is mid-flight: the stale engine must abandon the invocation
// at the next boundary (no completion callback, no further commits) and
// publish a FenceEvent naming the layer that caught it.
func TestFenceRejectsStaleOwner(t *testing.T) {
	for _, mode := range []Mode{ModeWorkerSP, ModeMasterSP} {
		rt := rig(2, network.MBps(50))
		d := durableDeploy(t, rt, mode)
		bus := obs.NewBus()
		var fences []obs.FenceEvent
		bus.Subscribe(func(ev obs.Event) {
			if fe, ok := ev.(obs.FenceEvent); ok {
				fences = append(fences, fe)
			}
		})
		d.SetObserver(bus)
		fenced := false
		d.SetFence("A", func(int64) error {
			if fenced {
				return &FencedError{Owner: "B", Epoch: 2}
			}
			return nil
		})
		got := false
		d.Invoke(func(Result) { got = true })
		// 300ms: source `a` is still inside its ~500ms cold start, so the
		// flip lands before any step has committed.
		rt.Env.Schedule(300*time.Millisecond, func() { fenced = true })
		rt.Env.Run()
		if got {
			t.Fatalf("%v: fenced invocation completed on the stale owner", mode)
		}
		ds := d.DurableStatsSnapshot()
		if ds.FencedSteps == 0 {
			t.Fatalf("%v: no steps fenced (stats: %+v)", mode, ds)
		}
		if d.Journal().Stats().Committed != 0 {
			t.Fatalf("%v: stale owner committed %d steps after losing ownership",
				mode, d.Journal().Stats().Committed)
		}
		if len(fences) == 0 {
			t.Fatalf("%v: no FenceEvent published", mode)
		}
		fe := fences[0]
		if fe.Engine != "A" || fe.Epoch != 2 || fe.Inv != 0 {
			t.Fatalf("%v: FenceEvent = %+v", mode, fe)
		}
		switch fe.Where {
		case "dispatch", "acquire", "exec", "store":
		default:
			t.Fatalf("%v: unexpected fence layer %q", mode, fe.Where)
		}
	}
}

// TestHandoffAdoptionRedispatchesTornStepsExactlyOnce is the cross-engine
// half of the torn-batch satellite: engine A crashes with steps b and c
// appended inside an open group-commit window (so the crash drops them
// un-synced), and engine B adopts the invocation from the union journal
// view. The truncated steps must re-dispatch exactly once — one commit per
// step across both logs, zero dup-drops — and the invocation completes on
// B with the dead time attributed to CompHandoff.
func TestHandoffAdoptionRedispatchesTornStepsExactlyOnce(t *testing.T) {
	run := func() (sim.Time, DurableStats) {
		rt := rig(2, network.MBps(50))
		b := miniBench()
		// A 100ms window keeps b's and c's appends buffered long enough for
		// the crash to land inside the open batch.
		jrA := journal.New(rt.Env, journal.Config{BatchWindow: 100 * time.Millisecond})
		jrB := journal.New(rt.Env, journal.Config{})
		place := placeRoundRobin(b, "w0", "w1")
		dA, err := NewDeployment(rt, b, place,
			Options{Mode: ModeWorkerSP, Data: DataStore, Journal: jrA})
		if err != nil {
			t.Fatal(err)
		}
		dB, err := NewDeployment(rt, b, place,
			Options{Mode: ModeWorkerSP, Data: DataStore, Journal: jrB})
		if err != nil {
			t.Fatal(err)
		}
		bus := obs.NewBus()
		log := obs.NewTraceLog()
		bus.Subscribe(log.Record)
		dA.SetObserver(bus)
		dB.SetObserver(bus)

		doneCount := 0
		var res Result
		var doneAt sim.Time
		done := func(r Result) { res = r; doneCount++; doneAt = rt.Env.Now() }
		dA.Invoke(done)
		// Step until a is durable and b+c sit appended in A's open batch.
		var at sim.Time
		for {
			at += sim.Time(time.Millisecond)
			rt.Env.RunUntil(at)
			st := jrA.Stats()
			if st.Appends == 3 && st.Committed == 1 {
				break
			}
			if at > sim.Time(10*time.Second) {
				t.Fatalf("never reached the torn-batch point (stats: %+v)", jrA.Stats())
			}
		}
		dA.CrashEngine()
		if st := jrA.Stats(); st.CrashDropped+st.TornTail != 2 {
			t.Fatalf("crash should drop b and c from the open batch, stats: %+v", st)
		}
		dA.DropInvocations(dA.LiveInvocationIDs())

		view := journal.NewView(jrA, jrB)
		committed := view.CommittedSteps(0)
		if len(committed) != 1 {
			t.Fatalf("union view sees %d committed steps pre-handoff, want 1 (a)", len(committed))
		}
		dB.AdoptInvocation(AdoptSpec{ID: 0, Start: 0, Done: done}, committed)
		rt.Env.Run()

		if doneCount != 1 {
			t.Fatalf("done fired %d times, want exactly once", doneCount)
		}
		if res.Failed {
			t.Fatal("adopted invocation failed")
		}
		ds := dB.DurableStatsSnapshot()
		if ds.Adopted != 1 {
			t.Fatalf("Adopted = %d", ds.Adopted)
		}
		if ds.ReplaySkips != 1 {
			t.Fatalf("ReplaySkips = %d, want 1 (only a was durable)", ds.ReplaySkips)
		}
		if ds.Redispatched != 2 {
			t.Fatalf("Redispatched = %d, want 2 (the truncated b and c)", ds.Redispatched)
		}
		// Exactly once across the federation: 4 steps, 4 commits total over
		// both logs, and neither log ever dup-dropped a second attempt.
		stA, stB := jrA.Stats(), jrB.Stats()
		if stA.Committed+stB.Committed != 4 || stA.DupDrops != 0 || stB.DupDrops != 0 {
			t.Fatalf("commit ledger wrong: A=%+v B=%+v", stA, stB)
		}
		if got := len(view.CommittedSteps(0)); got != 4 {
			t.Fatalf("union view sees %d committed steps post-handoff, want 4", got)
		}
		// The failover dead time is attributed to CompHandoff on the
		// resumed steps' trigger chains.
		bd, err := obs.AnalyzeInvocation(log, 0)
		if err != nil {
			t.Fatal(err)
		}
		if bd.ByComponent[obs.CompHandoff] == 0 {
			t.Fatalf("no handoff time on the critical path: %v", bd.ByComponent)
		}
		return doneAt, ds
	}
	at1, ds1 := run()
	at2, ds2 := run()
	if at1 != at2 || ds1 != ds2 {
		t.Fatalf("handoff not deterministic: %v/%+v vs %v/%+v", at1, ds1, at2, ds2)
	}
}

// TestDropInvocationsPreventsResurrection: after a successor claims an
// invocation, restarting the old owner must not replay it — the drop
// removed it from the old owner's replay set.
func TestDropInvocationsPreventsResurrection(t *testing.T) {
	rt := rig(2, network.MBps(50))
	d := durableDeploy(t, rt, ModeWorkerSP)
	got := false
	d.Invoke(func(Result) { got = true })
	rt.Env.RunUntil(sim.Time(800 * time.Millisecond))
	d.CrashEngine()
	d.DropInvocations(d.LiveInvocationIDs())
	d.RestartEngine()
	rt.Env.Run()
	if got {
		t.Fatal("dropped invocation was resurrected by the old owner's restart")
	}
	if ds := d.DurableStatsSnapshot(); ds.Redispatched != 0 {
		t.Fatalf("old owner re-dispatched %d steps after the drop", ds.Redispatched)
	}
}
