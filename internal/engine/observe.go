package engine

import (
	"repro/internal/dag"
	"repro/internal/obs"
	"repro/internal/sim"
)

// This file is the engine's side of the observability layer: publishing
// step/phase/invocation events and building the trigger-chain segments the
// critical-path analyzer consumes. Everything here is nil-safe and
// zero-cost when no bus is attached — chain builders return nil, publishes
// are a pointer check.
//
// The contiguity contract (see internal/obs): a trigger chain's segments
// abut. Engine-loop slots contribute a queue segment (enqueue → slot
// start, present only when the loop was busy) and a schedule segment (slot
// start → slot end); fabric hops contribute a transfer segment. Chains are
// built along the causal path and published exactly once, at the instant
// the destination's trigger condition resolves — so for every step there
// is one chain, from the predecessor whose completion actually triggered
// it (the binding predecessor).

// SetObserver attaches (or detaches, with nil) an observability bus. All
// engine events — step transitions, executor phases, invocation start and
// end, trigger chains — publish to it. Attach before invoking; chains in
// flight across an attach are dropped.
func (d *Deployment) SetObserver(b *obs.Bus) { d.obs = b }

// chainProc extends a trigger chain with one engine-loop slot: a queue
// segment when the loop was busy at enqueue, then the processing segment.
// The input slice is not aliased; branching call sites may reuse it.
func (d *Deployment) chainProc(segs []obs.Segment, enq, start, done sim.Time) []obs.Segment {
	if !d.obs.Active() {
		return nil
	}
	out := make([]obs.Segment, len(segs), len(segs)+2)
	copy(out, segs)
	if start > enq {
		out = append(out, obs.Segment{Comp: obs.CompQueue, Start: enq, End: start})
	}
	return append(out, obs.Segment{Comp: obs.CompSchedule, Start: start, End: done})
}

// chainTransfer extends a trigger chain with one fabric hop. Zero-latency
// (loopback) hops add nothing; contiguity is preserved either way.
func (d *Deployment) chainTransfer(segs []obs.Segment, start, end sim.Time) []obs.Segment {
	if !d.obs.Active() {
		return nil
	}
	out := make([]obs.Segment, len(segs), len(segs)+1)
	copy(out, segs)
	if end > start {
		out = append(out, obs.Segment{Comp: obs.CompTransfer, Start: start, End: end})
	}
	return out
}

// publishChain emits a completed trigger chain (from → to; -1 is the
// invocation boundary on either side).
func (d *Deployment) publishChain(inv *invocation, from, to int, segs []obs.Segment) {
	if len(segs) == 0 {
		return
	}
	d.obs.Publish(obs.TriggerChainEvent{
		Workflow: d.bench.Name,
		Inv:      inv.id,
		From:     from,
		To:       to,
		Segments: segs,
	})
}

// pubStep emits a step state transition at the current instant.
func (d *Deployment) pubStep(inv *invocation, id dag.NodeID, state obs.StepState) {
	if !d.obs.Active() {
		return
	}
	d.obs.Publish(obs.StepEvent{
		Workflow: d.bench.Name,
		Inv:      inv.id,
		Node:     int(id),
		Name:     d.g.Node(id).Name,
		Worker:   inv.place[id],
		State:    state,
		At:       d.rt.Env.Now(),
	})
}

// pubDeadline emits a deadline-abandonment event (id -1 = invocation
// level, e.g. admission-side cancellation before any step).
func (d *Deployment) pubDeadline(inv *invocation, id dag.NodeID, where string) {
	if !d.obs.Active() {
		return
	}
	node, name := -1, ""
	if id >= 0 {
		node, name = int(id), d.g.Node(id).Name
	}
	d.obs.Publish(obs.DeadlineEvent{
		Workflow: d.bench.Name,
		Inv:      inv.id,
		Node:     node,
		Name:     name,
		Where:    where,
		Deadline: inv.deadline,
		At:       d.rt.Env.Now(),
	})
}

// pubInvocation emits an invocation boundary event.
func (d *Deployment) pubInvocation(inv *invocation, end bool) {
	if !d.obs.Active() {
		return
	}
	d.obs.Publish(obs.InvocationEvent{
		Workflow: d.bench.Name,
		Inv:      inv.id,
		Mode:     d.opts.Mode.String(),
		Tenant:   inv.tenant,
		End:      end,
		Failed:   inv.failed,
		At:       d.rt.Env.Now(),
	})
}

// phaseComp maps a tracer phase label to its attribution component.
func phaseComp(phase string) obs.Component {
	switch phase {
	case "acquire":
		return obs.CompAcquire
	case "fetch":
		return obs.CompFetch
	case "exec":
		return obs.CompExec
	case "direct":
		return obs.CompDirect
	case "prewarm":
		return obs.CompPrewarmOverlap
	case "memo":
		return obs.CompMemoHit
	default:
		// "store" and "commit" (the journal fsync window) both count as
		// making outputs durable.
		return obs.CompStore
	}
}
