package engine

import (
	"repro/internal/dag"
	"repro/internal/obs"
	"repro/internal/sim"
)

// This file implements the MasterSP baseline (paper §2.2, Figure 3):
// HyperFlow-serverless. The central engine on the master node owns all
// workflow state. Every ready task is marshalled into an assignment
// message and sent to its worker; every completion returns to the master,
// which re-evaluates trigger conditions. Because the engine loop is
// serial, every one of these events queues behind the others — the
// scheduling overhead the paper measures in Figures 4 and 11.
//
// Switch skips resolve centrally: the master never dispatches a skipped
// node, it just forwards the skip through its state table.
//
// Trigger chains here span many more hops than WorkerSP's — completion
// transfer to the master, the master's completion slot, the assignment
// marshalling slot, the assignment transfer, and the worker's accept slot
// — which is exactly the extra schedule/transfer time the critical-path
// report attributes to this mode.

func (d *Deployment) invokeMasterSP(inv *invocation) {
	var enq, st, done sim.Time
	enq, st, done = d.master.process(func() {
		if inv.abandoned {
			return
		}
		pre := d.chainProc(nil, enq, st, done)
		for _, src := range d.sources {
			d.mspAssign(inv, src, -1, pre)
		}
	})
}

// mspAssign dispatches a ready node. It must be called from master engine
// context (inside a master.process callback). from/pre carry the trigger
// chain built up to (and including) the current master slot.
func (d *Deployment) mspAssign(inv *invocation, id dag.NodeID, from int, pre []obs.Segment) {
	if inv.started[id] || inv.abandoned {
		return
	}
	inv.started[id] = true
	if d.g.Node(id).Kind == dag.KindVirtual {
		// Virtual markers are bookkeeping the master resolves itself: the
		// chain into the marker closes here; the resolution slot opens the
		// chains toward its successors.
		d.publishChain(inv, from, int(id), pre)
		var enq, st, done sim.Time
		enq, st, done = d.master.process(func() {
			if inv.abandoned {
				return
			}
			d.mspComplete(inv, id, false, d.chainProc(nil, enq, st, done))
		})
		return
	}
	if d.deadlineExceeded(inv) {
		// Dead on assignment: the master drains the node as a skip instead
		// of marshalling it — downstream cancels through the skip wave.
		d.failDeadline(inv, id, "trigger")
		d.publishChain(inv, from, int(id), pre)
		var enq, st, done sim.Time
		enq, st, done = d.master.process(func() {
			if inv.abandoned {
				return
			}
			d.mspComplete(inv, id, true, d.chainProc(nil, enq, st, done))
		})
		return
	}
	w := inv.place[id]
	// Marshalling the task into an assignment is itself a serialized slot
	// of the master's event loop.
	var enq, st, done sim.Time
	enq, st, done = d.master.process(func() {
		if inv.abandoned {
			return
		}
		segs := d.chainProc(pre, enq, st, done)
		sendAt := d.rt.Env.Now()
		d.rt.Fabric.SendMsg(d.rt.Master, w, d.opts.AssignMsgBytes, func() {
			arrived := d.chainTransfer(segs, sendAt, d.rt.Env.Now())
			// The worker-side executor proxy accepts the task...
			var e2, s2, d2 sim.Time
			e2, s2, d2 = d.workers[w].process(func() {
				if inv.abandoned {
					return
				}
				d.publishChain(inv, from, int(id), d.chainProc(arrived, e2, s2, d2))
				d.pubStep(inv, id, obs.StepTriggered)
				d.runTask(inv, id, func(failed bool) {
					// ...and returns the execution state to the master.
					backAt := d.rt.Env.Now()
					d.rt.Fabric.SendMsg(w, d.rt.Master, d.opts.StateMsgBytes, func() {
						back := d.chainTransfer(nil, backAt, d.rt.Env.Now())
						var e3, s3, d3 sim.Time
						e3, s3, d3 = d.master.process(func() {
							if inv.abandoned {
								return
							}
							d.mspComplete(inv, id, failed, d.chainProc(back, e3, s3, d3))
						})
					})
				})
			})
		})
	})
}

// mspComplete updates central state after id finished (or was skipped) and
// assigns any successors whose predecessors are all resolved. Master
// engine context; pre is the chain from id's completion instant through
// the current master slot.
func (d *Deployment) mspComplete(inv *invocation, id dag.NodeID, nodeSkipped bool, pre []obs.Segment) {
	if nodeSkipped {
		// The step resolved without running: any containers pre-warmed for
		// it will never be claimed.
		d.cancelPrewarms(inv, id)
		d.pubStep(inv, id, obs.StepSkipped)
	} else {
		d.pubStep(inv, id, obs.StepCompleted)
	}
	if d.g.OutDegree(id) == 0 {
		inv.sinksLeft--
		if inv.sinksLeft == 0 {
			d.publishChain(inv, int(id), -1, pre)
			d.finishInvocation(inv)
		}
		return
	}
	skipped := d.skippedOutEdges(inv, id)
	for _, ei := range d.g.OutEdges(id) {
		succ := d.g.Edges()[ei].To
		skip := nodeSkipped || skipped[ei]
		inv.predsDone[succ]++
		if !skip {
			inv.realIn[succ]++
		}
		if inv.predsDone[succ] == d.g.InDegree(succ) {
			if inv.realIn[succ] == 0 {
				if !inv.started[succ] {
					inv.started[succ] = true
					succ := succ
					// The skip chain into succ closes with the current slot;
					// the forwarding slot opens its successors' chains.
					d.publishChain(inv, int(id), int(succ), pre)
					var enq, st, done sim.Time
					enq, st, done = d.master.process(func() {
						if inv.abandoned {
							return
						}
						d.mspComplete(inv, succ, true, d.chainProc(nil, enq, st, done))
					})
				}
				continue
			}
			d.mspAssign(inv, succ, int(id), pre)
		}
	}
}
