package engine

import "repro/internal/dag"

// This file implements the MasterSP baseline (paper §2.2, Figure 3):
// HyperFlow-serverless. The central engine on the master node owns all
// workflow state. Every ready task is marshalled into an assignment
// message and sent to its worker; every completion returns to the master,
// which re-evaluates trigger conditions. Because the engine loop is
// serial, every one of these events queues behind the others — the
// scheduling overhead the paper measures in Figures 4 and 11.
//
// Switch skips resolve centrally: the master never dispatches a skipped
// node, it just forwards the skip through its state table.

func (d *Deployment) invokeMasterSP(inv *invocation) {
	d.master.process(func() {
		for _, src := range d.sources {
			d.mspAssign(inv, src)
		}
	})
}

// mspAssign dispatches a ready node. It must be called from master engine
// context (inside a master.process callback).
func (d *Deployment) mspAssign(inv *invocation, id dag.NodeID) {
	if inv.started[id] {
		return
	}
	inv.started[id] = true
	if d.g.Node(id).Kind == dag.KindVirtual {
		// Virtual markers are bookkeeping the master resolves itself.
		d.master.process(func() { d.mspComplete(inv, id, false) })
		return
	}
	w := inv.place[id]
	// Marshalling the task into an assignment is itself a serialized slot
	// of the master's event loop.
	d.master.process(func() {
		d.rt.Fabric.SendMsg(d.rt.Master, w, d.opts.AssignMsgBytes, func() {
			// The worker-side executor proxy accepts the task...
			d.workers[w].process(func() {
				d.runTask(inv, id, func(failed bool) {
					// ...and returns the execution state to the master.
					d.rt.Fabric.SendMsg(w, d.rt.Master, d.opts.StateMsgBytes, func() {
						d.master.process(func() { d.mspComplete(inv, id, failed) })
					})
				})
			})
		})
	})
}

// mspComplete updates central state after id finished (or was skipped) and
// assigns any successors whose predecessors are all resolved. Master
// engine context.
func (d *Deployment) mspComplete(inv *invocation, id dag.NodeID, nodeSkipped bool) {
	if d.g.OutDegree(id) == 0 {
		inv.sinksLeft--
		if inv.sinksLeft == 0 {
			d.finishInvocation(inv)
		}
		return
	}
	skipped := d.skippedOutEdges(inv, id)
	for _, ei := range d.g.OutEdges(id) {
		succ := d.g.Edges()[ei].To
		skip := nodeSkipped || skipped[ei]
		inv.predsDone[succ]++
		if !skip {
			inv.realIn[succ]++
		}
		if inv.predsDone[succ] == d.g.InDegree(succ) {
			if inv.realIn[succ] == 0 {
				if !inv.started[succ] {
					inv.started[succ] = true
					succ := succ
					d.master.process(func() { d.mspComplete(inv, succ, true) })
				}
				continue
			}
			d.mspAssign(inv, succ)
		}
	}
}
