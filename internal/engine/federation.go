package engine

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/dag"
	"repro/internal/expr"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/sim"
)

// This file is the engine's federation surface: the ownership fence a
// member engine consults before acting on an invocation, and the adoption
// API a successor uses to resume invocations claimed from a peer whose
// lease expired. The federation control plane itself lives in
// internal/federation; the engine only knows how to (a) stand down when an
// epoch check says its ownership is stale and (b) rebuild an invocation it
// never started from a committed-step map.

// FencedError is the typed rejection an ownership fence returns: the
// invocation's shard moved to another engine under Epoch, so the caller's
// view is stale and it must stand down.
type FencedError struct {
	Owner string // the engine that owns the shard now
	Epoch int64  // the shard's current fencing epoch
}

func (e *FencedError) Error() string {
	return fmt.Sprintf("engine: fenced by epoch %d (shard owned by %s)", e.Epoch, e.Owner)
}

// SetFence installs the federation ownership check. engineID names this
// engine in the membership table (it labels FenceEvents); fn must return
// nil while this engine owns inv's shard and a *FencedError once it does
// not. The fence is consulted at dispatch, at executor phase boundaries,
// and — through cluster.AcquireOptions.Fence — at container grant time,
// so a stale owner's late work is rejected at every layer that could
// produce an externally visible effect.
func (d *Deployment) SetFence(engineID string, fn func(inv int64) error) {
	d.engineID = engineID
	d.fence = fn
}

// EngineID reports the federation member name set by SetFence ("" when
// the deployment is not federated).
func (d *Deployment) EngineID() string { return d.engineID }

// fenceCheck consults the fence at an execution boundary. A rejection
// abandons the invocation locally — the successor owns it now, so every
// other in-flight callback holding it bails exactly as after an engine
// crash — publishes a FenceEvent, and returns true.
func (d *Deployment) fenceCheck(inv *invocation, id dag.NodeID, where string) bool {
	if d.fence == nil || inv.abandoned {
		return false
	}
	err := d.fence(inv.id)
	if err == nil {
		return false
	}
	d.fencedSteps++
	inv.abandoned = true
	d.drainPrewarms(inv)
	if d.obs.Active() {
		var fe *FencedError
		var epoch int64
		if errors.As(err, &fe) {
			epoch = fe.Epoch
		}
		d.obs.Publish(obs.FenceEvent{
			Workflow: d.bench.Name,
			Engine:   d.engineID,
			Inv:      inv.id,
			Step:     int(id),
			Where:    where,
			Epoch:    epoch,
			At:       d.rt.Env.Now(),
		})
	}
	return true
}

// clusterFence adapts the engine fence to one invocation's container
// acquisitions (nil when the deployment is not federated).
func (d *Deployment) clusterFence(inv *invocation) func() error {
	if d.fence == nil {
		return nil
	}
	return func() error { return d.fence(inv.id) }
}

// AdoptSpec describes one invocation a successor engine adopts during a
// shard handoff: the routing-level facts the federation kept when it
// dispatched the invocation. Everything else — attempt counters, written
// store keys, the completed frontier — is rebuilt from the journal, because
// the old owner's in-memory state died with it.
type AdoptSpec struct {
	ID       int64
	Start    sim.Time
	Args     map[string]any
	Deadline sim.Time
	Tenant   string
	Done     func(Result)
}

// AdoptInvocation registers a claimed invocation on this engine and
// resumes it: committed steps (unioned across every federation member's
// journal by the caller) are skipped and their state forwarded, the
// uncommitted cut is re-dispatched, and the dead time is attributed to
// CompHandoff. Requires a journal; a non-durable engine cannot adopt.
func (d *Deployment) AdoptInvocation(spec AdoptSpec, committed map[int]journal.Entry) {
	if d.jr == nil {
		panic("engine: AdoptInvocation on a non-durable deployment")
	}
	var env expr.Env
	if spec.Args != nil {
		env = expr.Env(spec.Args)
	}
	old := &invocation{
		id:       spec.ID,
		version:  d.version,
		place:    d.place,
		start:    spec.Start,
		args:     env,
		deadline: spec.Deadline,
		tenant:   spec.Tenant,
		done:     spec.Done,
		stepSeq:  make([]int, d.g.Len()),
	}
	// Rebuild attempt counters and written store keys from the journal, in
	// sorted step order so finish-time cleanup stays deterministic.
	steps := make([]int, 0, len(committed))
	for step := range committed {
		steps = append(steps, step)
	}
	sort.Ints(steps)
	for _, step := range steps {
		e := committed[step]
		if step < len(old.stepSeq) {
			old.stepSeq[step] = e.AttemptSeq
		}
		old.keys = append(old.keys, e.Outputs...)
	}
	if spec.ID >= d.nextInv {
		d.nextInv = spec.ID + 1
	}
	d.adopted++
	d.liveByVersion[old.version]++
	d.liveNow++
	if d.liveNow > d.peakLive {
		d.peakLive = d.liveNow
	}
	d.resumeInvocation(old, committed, obs.CompHandoff)
}

// DropInvocations releases claimed invocations from this engine: each is
// marked abandoned (in-flight callbacks bail at their next boundary) and
// removed from replay bookkeeping, so a later RestartEngine cannot resume
// invocations a successor now owns. Safe on a crashed engine; IDs with no
// live invocation are ignored.
func (d *Deployment) DropInvocations(ids []int64) {
	for _, id := range ids {
		inv := d.liveInvs[id]
		if inv == nil {
			continue
		}
		inv.abandoned = true
		d.drainPrewarms(inv)
		delete(d.liveInvs, id)
		d.liveByVersion[inv.version]--
		d.liveNow--
		if d.liveByVersion[inv.version] == 0 && inv.version != d.version {
			delete(d.liveByVersion, inv.version)
		}
	}
}

// LiveInvocationIDs reports the engine's in-flight invocation IDs,
// ascending — the set a federation claim partitions by shard.
func (d *Deployment) LiveInvocationIDs() []int64 {
	if d.jr == nil {
		return nil
	}
	return d.liveInvIDs()
}
