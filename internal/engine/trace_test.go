package engine

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/network"
)

func TestTracerRecordsAllPhases(t *testing.T) {
	rt := rig(2, network.MBps(50))
	b := miniBench()
	d, err := NewDeployment(rt, b, placeRoundRobin(b, "w0", "w1"), Options{Mode: ModeWorkerSP, Data: DataStore})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer()
	d.SetTracer(tr)
	run(t, rt, d)
	// 4 tasks x 4 phases.
	if tr.Len() != 16 {
		t.Fatalf("events = %d, want 16", tr.Len())
	}
	phases := map[string]int{}
	for _, e := range tr.Events() {
		phases[e.Phase]++
		if e.End < e.Start {
			t.Fatalf("negative span: %+v", e)
		}
		if e.Worker != "w0" && e.Worker != "w1" {
			t.Fatalf("unknown worker %q", e.Worker)
		}
	}
	for _, p := range []string{"acquire", "fetch", "exec", "store"} {
		if phases[p] != 4 {
			t.Fatalf("phase %s count = %d, want 4", p, phases[p])
		}
	}
}

func TestTracerEventsOrdered(t *testing.T) {
	rt := rig(1, network.MBps(50))
	b := miniBench()
	d, err := NewDeployment(rt, b, placeAll(b, "w0"), Options{Mode: ModeWorkerSP, Data: DataStore})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer()
	d.SetTracer(tr)
	run(t, rt, d)
	evs := tr.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Start < evs[i-1].Start {
			t.Fatal("Events() not chronologically sorted")
		}
	}
	// Source task "a" phases must run in order acquire->fetch->exec->store.
	var aPhases []string
	for _, e := range evs {
		if e.Node == "a" {
			aPhases = append(aPhases, e.Phase)
		}
	}
	want := []string{"acquire", "fetch", "exec", "store"}
	if len(aPhases) != 4 {
		t.Fatalf("a phases = %v", aPhases)
	}
	for i := range want {
		if aPhases[i] != want[i] {
			t.Fatalf("a phases = %v, want %v", aPhases, want)
		}
	}
}

func TestTracerChromeJSON(t *testing.T) {
	rt := rig(2, network.MBps(50))
	b := miniBench()
	d, err := NewDeployment(rt, b, placeRoundRobin(b, "w0", "w1"), Options{Mode: ModeMasterSP, Data: DataStore})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer()
	d.SetTracer(tr)
	run(t, rt, d)
	data, err := tr.ChromeJSON()
	if err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]any
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if len(parsed) != tr.Len() {
		t.Fatalf("JSON events = %d, want %d", len(parsed), tr.Len())
	}
	ev := parsed[0]
	for _, key := range []string{"name", "ph", "ts", "dur", "pid", "tid"} {
		if _, ok := ev[key]; !ok {
			t.Fatalf("event missing %q: %v", key, ev)
		}
	}
	if ev["ph"] != "X" {
		t.Fatalf("ph = %v, want X", ev["ph"])
	}
}

func TestTracerForeachReplicaNames(t *testing.T) {
	rt := rig(1, network.MBps(50))
	b := VideoLike()
	// Mark the middle nodes as foreach width 2 to exercise replica naming.
	for _, n := range b.Graph.Nodes() {
		if strings.HasPrefix(n.Name, "m") {
			b.Graph.SetWidth(n.ID, 2)
			b.Graph.MarkForeach(n.ID)
		}
	}
	d, err := NewDeployment(rt, b, placeAll(b, "w0"), Options{Mode: ModeWorkerSP, Data: DataStore})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer()
	d.SetTracer(tr)
	run(t, rt, d)
	replicas := map[string]bool{}
	for _, e := range tr.Events() {
		if strings.Contains(e.Node, "#") {
			replicas[e.Node] = true
		}
	}
	if !replicas["m0#0"] || !replicas["m0#1"] {
		t.Fatalf("foreach replica spans missing: %v", replicas)
	}
}

func TestTracerReset(t *testing.T) {
	tr := NewTracer()
	tr.add(TraceEvent{Node: "x"})
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestNoTracerNoOverhead(t *testing.T) {
	rt := rig(1, network.MBps(50))
	b := miniBench()
	d, err := NewDeployment(rt, b, placeAll(b, "w0"), Options{Mode: ModeWorkerSP, Data: DataStore})
	if err != nil {
		t.Fatal(err)
	}
	// No tracer attached: must run exactly as before.
	res := run(t, rt, d)
	if res.Latency() <= 0 {
		t.Fatal("run without tracer broken")
	}
}

func TestTracerChromeJSONEmpty(t *testing.T) {
	data, err := NewTracer().ChromeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(data)) != "[]" {
		t.Fatalf("empty tracer renders %q; want [] (null breaks trace viewers)", data)
	}
}

func TestTracerChromeJSONChronological(t *testing.T) {
	tr := NewTracer()
	tr.add(TraceEvent{Node: "b", Phase: "exec", Start: 300, End: 400})
	tr.add(TraceEvent{Node: "a", Phase: "exec", Start: 100, End: 200})
	data, err := tr.ChromeJSON()
	if err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]any
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatal(err)
	}
	var prev float64 = -1
	for _, ev := range parsed {
		ts := ev["ts"].(float64)
		if ts < prev {
			t.Fatalf("events out of order: ts %v after %v", ts, prev)
		}
		prev = ts
	}
}

func TestItoa(t *testing.T) {
	cases := map[int]string{
		0:          "0",
		7:          "7",
		42:         "42",
		-13:        "-13", // the old hand-rolled version looped forever here
		123456789:  "123456789",
		-987654321: "-987654321",
	}
	for in, want := range cases {
		if got := itoa(in); got != want {
			t.Errorf("itoa(%d) = %q; want %q", in, got, want)
		}
	}
}
