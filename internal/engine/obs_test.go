package engine

import (
	"strings"
	"testing"
	"time"

	"repro/internal/network"
	"repro/internal/obs"
)

// observe runs one invocation of bench under mode with a bus + trace log
// attached and returns the log.
func observe(t *testing.T, mode Mode, opts Options) (*obs.TraceLog, Result) {
	t.Helper()
	rt := rig(2, network.MBps(50))
	b := miniBench()
	opts.Mode = mode
	d, err := NewDeployment(rt, b, placeRoundRobin(b, "w0", "w1"), opts)
	if err != nil {
		t.Fatal(err)
	}
	bus := obs.NewBus()
	log := obs.NewTraceLog()
	bus.Subscribe(log.Record)
	rt.Fabric.SetBus(bus)
	for _, n := range rt.Nodes {
		n.SetBus(bus)
	}
	rt.Store.SetBus(bus)
	d.SetObserver(bus)
	res := run(t, rt, d)
	return log, res
}

func analyze(t *testing.T, log *obs.TraceLog) *obs.Breakdown {
	t.Helper()
	bd, err := obs.AnalyzeInvocation(log, 0)
	if err != nil {
		t.Fatal(err)
	}
	return bd
}

// checkExact asserts the attribution partitions the whole latency: the
// component sum equals the end-to-end total and nothing was left to the
// gap fallback.
func checkExact(t *testing.T, bd *obs.Breakdown, res Result) {
	t.Helper()
	if bd.Total != res.Latency() {
		t.Fatalf("breakdown total %v != invocation latency %v", bd.Total, res.Latency())
	}
	if bd.Sum() != bd.Total {
		t.Fatalf("component sum %v != total %v (by component: %v)", bd.Sum(), bd.Total, bd.ByComponent)
	}
	if bd.Unattributed != 0 {
		t.Fatalf("unattributed time %v; want 0 (by component: %v)", bd.Unattributed, bd.ByComponent)
	}
}

func TestCritPathExactWorkerSP(t *testing.T) {
	log, res := observe(t, ModeWorkerSP, Options{Data: DataStore})
	bd := analyze(t, log)
	checkExact(t, bd, res)
	if bd.Mode != "WorkerSP" {
		t.Fatalf("mode = %q", bd.Mode)
	}
	if bd.Component(obs.CompExec) < 200*time.Millisecond {
		t.Fatalf("exec on critical path = %v; want >= 2 steps of 85ms+", bd.Component(obs.CompExec))
	}
	if len(bd.Path) == 0 || bd.Path[0] != "a" {
		t.Fatalf("critical path %v; want to start at source a", bd.Path)
	}
}

func TestCritPathExactMasterSP(t *testing.T) {
	log, res := observe(t, ModeMasterSP, Options{Data: DataStore})
	checkExact(t, analyze(t, log), res)
}

func TestCritPathMasterSPHasHigherControlOverhead(t *testing.T) {
	// The paper's core claim (§2.3, §5.2): centralizing trigger processing
	// adds schedule + transfer time to every hop. The breakdown must show
	// MasterSP strictly above WorkerSP on those components. NoJitter so
	// exec time cancels exactly.
	wlog, _ := observe(t, ModeWorkerSP, Options{Data: DataNone, NoJitter: true})
	mlog, _ := observe(t, ModeMasterSP, Options{Data: DataNone, NoJitter: true})
	w, m := analyze(t, wlog), analyze(t, mlog)
	wCtl := w.Component(obs.CompSchedule) + w.Component(obs.CompTransfer)
	mCtl := m.Component(obs.CompSchedule) + m.Component(obs.CompTransfer)
	if mCtl <= wCtl {
		t.Fatalf("MasterSP control time %v <= WorkerSP %v", mCtl, wCtl)
	}
	if m.Component(obs.CompSchedule) <= w.Component(obs.CompSchedule) {
		t.Fatalf("MasterSP schedule %v <= WorkerSP %v",
			m.Component(obs.CompSchedule), w.Component(obs.CompSchedule))
	}
	if m.Total <= w.Total {
		t.Fatalf("MasterSP total %v <= WorkerSP total %v", m.Total, w.Total)
	}
}

func TestCritPathExactWithVirtualNodes(t *testing.T) {
	for _, mode := range []Mode{ModeWorkerSP, ModeMasterSP} {
		rt := rig(2, network.MBps(50))
		b := virtBench()
		d, err := NewDeployment(rt, b, placeRoundRobin(b, "w0", "w1"),
			Options{Mode: mode, Data: DataStore})
		if err != nil {
			t.Fatal(err)
		}
		bus := obs.NewBus()
		log := obs.NewTraceLog()
		bus.Subscribe(log.Record)
		d.SetObserver(bus)
		res := run(t, rt, d)
		checkExact(t, analyze(t, log), res)
	}
}

func TestCritPathExactWithRetries(t *testing.T) {
	// Crashed attempts re-run acquire/fetch/exec back-to-back; the walk
	// must absorb them without leaving gaps.
	log, res := observe(t, ModeWorkerSP, Options{Data: DataStore, FailureRate: 0.4, MaxAttempts: 5})
	if res.Failed {
		t.Skip("all retries exhausted under this seed; nothing to attribute")
	}
	checkExact(t, analyze(t, log), res)
}

func TestCritPathExactUnderConcurrency(t *testing.T) {
	// Three concurrent invocations contend for engine loops and links;
	// each invocation's own attribution must still be exact.
	rt := rig(2, network.MBps(50))
	b := miniBench()
	d, err := NewDeployment(rt, b, placeRoundRobin(b, "w0", "w1"),
		Options{Mode: ModeMasterSP, Data: DataStore})
	if err != nil {
		t.Fatal(err)
	}
	bus := obs.NewBus()
	log := obs.NewTraceLog()
	bus.Subscribe(log.Record)
	d.SetObserver(bus)
	results := map[int64]Result{}
	for i := 0; i < 3; i++ {
		d.Invoke(func(r Result) { results[r.ID] = r })
	}
	rt.Env.Run()
	invs := log.Invocations()
	if len(invs) != 3 {
		t.Fatalf("completed invocations = %v; want 3", invs)
	}
	for _, inv := range invs {
		bd, err := obs.AnalyzeInvocation(log, inv)
		if err != nil {
			t.Fatal(err)
		}
		checkExact(t, bd, results[inv])
	}
}

func TestObsStepAndSubstrateEvents(t *testing.T) {
	log, _ := observe(t, ModeWorkerSP, Options{Data: DataStore})
	kinds := map[string]int{}
	for _, ev := range log.Events() {
		kinds[ev.Kind()]++
	}
	for _, want := range []string{"invocation", "step", "phase", "trigger-chain", "container", "store", "msg"} {
		if kinds[want] == 0 {
			t.Errorf("no %q events recorded (got %v)", want, kinds)
		}
	}
	// 4 steps triggered + 4 completed on the diamond.
	var triggered, completed int
	for _, ev := range log.Events() {
		if se, ok := ev.(obs.StepEvent); ok {
			switch se.State {
			case obs.StepTriggered:
				triggered++
			case obs.StepCompleted:
				completed++
			}
		}
	}
	if triggered != 4 || completed != 4 {
		t.Fatalf("triggered/completed = %d/%d; want 4/4", triggered, completed)
	}
}

func TestObsCollectorEndToEnd(t *testing.T) {
	rt := rig(2, network.MBps(50))
	b := miniBench()
	d, err := NewDeployment(rt, b, placeRoundRobin(b, "w0", "w1"),
		Options{Mode: ModeWorkerSP, Data: DataStore})
	if err != nil {
		t.Fatal(err)
	}
	bus := obs.NewBus()
	reg := obs.NewRegistry()
	col := obs.NewCollector(reg)
	bus.Subscribe(col.Handle)
	bus.Subscribe(obs.NewLatencyTracker(col))
	rt.Fabric.SetBus(bus)
	for _, n := range rt.Nodes {
		n.SetBus(bus)
	}
	rt.Store.SetBus(bus)
	d.SetObserver(bus)
	run(t, rt, d)
	text := reg.String()
	for _, want := range []string{
		`faasflow_invocations_total{workflow="mini",mode="WorkerSP",result="ok"} 1`,
		"faasflow_invocation_seconds_count",
		`faasflow_steps_total{workflow="mini",state="completed"} 4`,
		"faasflow_container_events_total",
		"faasflow_store_ops_total",
		"# TYPE faasflow_invocation_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
}

func TestObsDetachedZeroEvents(t *testing.T) {
	// No observer: publishing must be inert and results identical to an
	// observed run (the bus may not perturb the simulation).
	rt1 := rig(2, network.MBps(50))
	b1 := miniBench()
	d1, err := NewDeployment(rt1, b1, placeRoundRobin(b1, "w0", "w1"),
		Options{Mode: ModeWorkerSP, Data: DataStore})
	if err != nil {
		t.Fatal(err)
	}
	plain := run(t, rt1, d1)

	log, observed := observe(t, ModeWorkerSP, Options{Data: DataStore})
	if plain.Latency() != observed.Latency() {
		t.Fatalf("observer changed latency: %v vs %v", plain.Latency(), observed.Latency())
	}
	if log.Len() == 0 {
		t.Fatal("observed run recorded nothing")
	}
}

func TestObsChromeTraceFullSystem(t *testing.T) {
	log, _ := observe(t, ModeWorkerSP, Options{Data: DataStore})
	data, err := obs.ChromeTrace(log)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"ph": "X"`, `"pid": "control"`, `"pid": "store"`, `"ph": "C"`} {
		if !strings.Contains(s, want) {
			t.Errorf("chrome trace missing %q", want)
		}
	}
}
