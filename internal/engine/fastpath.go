package engine

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/dag"
	"repro/internal/obs"
	"repro/internal/sim"
)

// This file implements the data-plane fast path, three independent features
// toggled by Options.FastPath:
//
//   - Direct passing: when a cross-node edge's consumer placement is known
//     at producer completion, the output is pushed worker→worker over the
//     fabric (store.Hybrid.PushDirect) instead of paying the Put-to-remote
//     + Get round trip. Falls back to the store hop when placement is
//     unusable (a consumer's node is down), the push is rejected (quota,
//     remote-only tier), or replication requires a durable database copy.
//     The push attributes as CompDirect on the critical path.
//   - DAG-lookahead pre-warm: when a step starts executing, container
//     acquisitions are issued for every successor it will trigger — while
//     the predecessor is still running, so the acquisition adds pool
//     capacity in parallel with execution instead of queueing behind it.
//     The consumer claims the pre-warmed container at trigger time; only
//     the residual (non-overlapped) wait shows up as CompPrewarmOverlap.
//     Pre-warms cancel when the step is skipped, the invocation finishes
//     or crashes, or the acquire deadline passes.
//   - Memoization: step outputs are content-addressed by (function, input
//     hash); a hit replays the outputs after a cache-lookup delay instead
//     of acquiring a container and executing, attributed as CompMemoHit.
//
// Every fast-path cost sits downstream of the scheduler's placement inputs,
// so counterfactual re-simulation (internal/whatif) keeps its factor-1
// identity with all three features enabled.

// FastPathOptions toggles the data-plane fast path.
type FastPathOptions struct {
	// DirectPassing pushes outputs straight to consumer workers when their
	// placement is known at producer completion.
	DirectPassing bool
	// Prewarm issues successor container acquisitions while the predecessor
	// is still executing.
	Prewarm bool
	// Memoize replays content-addressed step outputs instead of executing
	// when the (function, input hash) key was produced before.
	Memoize bool
	// MemoLookup is the memo-cache lookup delay paid on a hit (default
	// 200µs when Memoize is set).
	MemoLookup time.Duration
}

// Enabled reports whether any fast-path feature is on.
func (f FastPathOptions) Enabled() bool {
	return f.DirectPassing || f.Prewarm || f.Memoize
}

// FastPathStats aggregates the fast-path counters.
type FastPathStats struct {
	// DirectPushes counts output edges placed via direct passing.
	DirectPushes int64
	// DirectFallbacks counts edges that qualified for direct passing but
	// fell back to the store hop (push rejected).
	DirectFallbacks int64
	// PrewarmIssued counts lookahead container acquisitions issued.
	PrewarmIssued int64
	// PrewarmHits counts executor attempts that claimed a pre-warmed slot.
	PrewarmHits int64
	// PrewarmCancelled counts pre-warm slots cancelled before being claimed
	// (skipped step, invocation end, wrong worker after re-placement).
	PrewarmCancelled int64
	// MemoHits counts steps whose outputs were replayed from the memo cache.
	MemoHits int64
	// MemoMisses counts memoizable steps that had to execute.
	MemoMisses int64
}

// FastPathStatsSnapshot reports current fast-path counters.
func (d *Deployment) FastPathStatsSnapshot() FastPathStats {
	return FastPathStats{
		DirectPushes:     d.directPushes,
		DirectFallbacks:  d.directFallbacks,
		PrewarmIssued:    d.prewarmIssued,
		PrewarmHits:      d.prewarmHits,
		PrewarmCancelled: d.prewarmCancelled,
		MemoHits:         d.memoHits,
		MemoMisses:       d.memoMisses,
	}
}

// ---------------------------------------------------------------------------
// Direct passing

// directTargets decides whether an output edge qualifies for direct passing
// and returns the deduplicated consumer workers (in consumer order), or nil
// to take the store hop: feature off, no consumers (terminal output — the
// client reads it from the remote store), replication configured (durability
// wants a database copy), or a consumer's node is down (its task will be
// re-placed, invalidating the placement the push would rely on).
func (d *Deployment) directTargets(inv *invocation, out output) []string {
	if !d.opts.FastPath.DirectPassing || len(out.consumers) == 0 {
		return nil
	}
	if d.rt.Store.ReplicationFactor() > 1 {
		return nil
	}
	targets := make([]string, 0, len(out.consumers))
	seen := map[string]bool{}
	for _, c := range out.consumers {
		w := inv.place[c]
		n := d.rt.Nodes[w]
		if n == nil || n.Failed() {
			return nil
		}
		if !seen[w] {
			seen[w] = true
			targets = append(targets, w)
		}
	}
	return targets
}

// ---------------------------------------------------------------------------
// DAG-lookahead pre-warm

// prewarmSlot is one lookahead container acquisition for a successor step.
type prewarmSlot struct {
	worker    string
	c         *cluster.Container
	err       error
	delivered bool
	cancelled bool
	// claim, when set by a consumer that arrived before delivery, fires at
	// the delivery instant so the waiting executor resumes immediately.
	claim func()
}

// prewarmSet holds the un-claimed slots for one step, in issue order.
type prewarmSet struct {
	slots []*prewarmSlot
}

// issuePrewarms runs when step id starts executing: it pre-acquires
// containers for every successor that id's completion will trigger.
// Idempotent per (invocation, producer) — replica fan-outs and crash
// retries do not re-issue.
func (d *Deployment) issuePrewarms(inv *invocation, id dag.NodeID) {
	if !d.opts.FastPath.Prewarm || inv.abandoned || d.deadlineExceeded(inv) {
		return
	}
	if inv.prewarmed == nil {
		inv.prewarmed = make([]bool, d.g.Len())
	}
	if inv.prewarmed[id] {
		return
	}
	inv.prewarmed[id] = true
	var cands []dag.NodeID
	d.collectPrewarm(inv, id, d.skippedOutEdges(inv, id), &cands)
	for _, c := range cands {
		d.prewarmStep(inv, c)
	}
}

// collectPrewarm finds the task nodes id's completion will trigger: direct
// successors — looking through virtual markers, which resolve instantly —
// whose only unresolved predecessor is id itself. A successor still waiting
// on another predecessor is left alone; pre-warming it would hold a
// container for an unbounded join wait.
func (d *Deployment) collectPrewarm(inv *invocation, id dag.NodeID, skipped map[int]bool, out *[]dag.NodeID) {
	edges := d.g.Edges()
	for _, ei := range d.g.OutEdges(id) {
		if skipped[ei] {
			continue
		}
		succ := edges[ei].To
		if inv.started[succ] || inv.predsDone[succ] != d.g.InDegree(succ)-1 {
			continue
		}
		if d.g.Node(succ).Kind == dag.KindVirtual {
			d.collectPrewarm(inv, succ, d.skippedOutEdges(inv, succ), out)
			continue
		}
		*out = append(*out, succ)
	}
}

// prewarmStep issues Width lookahead acquisitions for step id on its placed
// worker. A step already holding a set, placed on a dead node, or certain
// to memo-hit (no container needed) is skipped.
func (d *Deployment) prewarmStep(inv *invocation, id dag.NodeID) {
	if _, dup := inv.prewarm[id]; dup {
		return
	}
	if d.opts.FastPath.Memoize && d.memo[d.contentHash(inv, id)] {
		return
	}
	node := d.g.Node(id)
	worker := inv.place[id]
	w := d.rt.Nodes[worker]
	if w == nil || w.Failed() {
		return
	}
	if inv.prewarm == nil {
		inv.prewarm = map[dag.NodeID]*prewarmSet{}
	}
	set := &prewarmSet{}
	inv.prewarm[id] = set
	for i := 0; i < node.Width; i++ {
		slot := &prewarmSlot{worker: worker}
		set.slots = append(set.slots, slot)
		d.prewarmIssued++
		w.AcquireOpts(node.Function, cluster.AcquireOptions{Deadline: inv.deadline, Tenant: inv.tenant}, func(c *cluster.Container, cold bool, err error) {
			slot.delivered = true
			slot.c, slot.err = c, err
			if slot.cancelled || inv.abandoned {
				if c != nil {
					w.Release(c)
				}
				slot.c = nil
				return
			}
			if slot.claim != nil {
				claim := slot.claim
				slot.claim = nil
				claim()
			}
		})
	}
}

// takePrewarm pops the next usable pre-warmed slot for (inv, id) on worker,
// or nil when none is pending. Slots on the wrong worker (the step was
// re-placed after a fault) or whose container was lost are cancelled and
// skipped — their delivery callback releases the container.
func (d *Deployment) takePrewarm(inv *invocation, id dag.NodeID, worker string) *prewarmSlot {
	set := inv.prewarm[id]
	if set == nil {
		return nil
	}
	for len(set.slots) > 0 {
		slot := set.slots[0]
		set.slots = set.slots[1:]
		if len(set.slots) == 0 {
			delete(inv.prewarm, id)
		}
		if slot.cancelled {
			continue
		}
		if slot.worker != worker {
			d.cancelSlot(slot)
			continue
		}
		if slot.delivered && (slot.err != nil || slot.c == nil || slot.c.Dead()) {
			continue // failed acquisition; fall through to a fresh acquire
		}
		return slot
	}
	delete(inv.prewarm, id)
	return nil
}

// cancelSlot marks one slot cancelled, releasing its container if already
// delivered (an undelivered slot releases at its delivery callback).
func (d *Deployment) cancelSlot(slot *prewarmSlot) {
	if slot.cancelled {
		return
	}
	slot.cancelled = true
	d.prewarmCancelled++
	if slot.delivered && slot.c != nil {
		d.rt.Nodes[slot.worker].Release(slot.c)
		slot.c = nil
	}
}

// cancelPrewarms cancels every pending pre-warm slot for step id — called
// when the step resolves as a skip (switch branch not taken, deadline
// drain, failure propagation) and will never claim them.
func (d *Deployment) cancelPrewarms(inv *invocation, id dag.NodeID) {
	set := inv.prewarm[id]
	if set == nil {
		return
	}
	delete(inv.prewarm, id)
	for _, slot := range set.slots {
		d.cancelSlot(slot)
	}
}

// drainPrewarms cancels every pending pre-warm of an invocation — at
// invocation end and at an engine crash (the orphaned invocation's slots
// would otherwise hold containers forever).
func (d *Deployment) drainPrewarms(inv *invocation) {
	if len(inv.prewarm) == 0 {
		return
	}
	ids := make([]dag.NodeID, 0, len(inv.prewarm))
	for id := range inv.prewarm {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		d.cancelPrewarms(inv, id)
	}
}

// ---------------------------------------------------------------------------
// Content-addressed memoization

// contentHash fingerprints step id's inputs for this invocation: the
// function, node name and width, the invocation arguments, and — because
// payload content is not modeled — the content hashes of every predecessor,
// transitively. Two invocations with equal arguments hash identically node
// for node, which is exactly the memo-key semantics: the same function on
// the same inputs. Invocation IDs and timing never enter the hash.
func (d *Deployment) contentHash(inv *invocation, id dag.NodeID) uint64 {
	if inv.chash == nil {
		inv.chash = make([]uint64, d.g.Len())
	}
	if h := inv.chash[id]; h != 0 {
		return h
	}
	node := d.g.Node(id)
	h := sim.Mix(strHash(node.Function), strHash(node.Name), uint64(node.Width), d.argsHash(inv))
	for _, pred := range d.g.Preds(id) {
		h = sim.Mix(h, d.contentHash(inv, pred))
	}
	if h == 0 {
		h = 1 // 0 is the not-yet-computed sentinel in chash
	}
	inv.chash[id] = h
	return h
}

// argsHash fingerprints the invocation arguments (sorted keys, %v values),
// cached per invocation.
func (d *Deployment) argsHash(inv *invocation) uint64 {
	if inv.argsHashed {
		return inv.argsH
	}
	h := uint64(0x9e3779b97f4a7c15)
	if inv.args != nil {
		keys := make([]string, 0, len(inv.args))
		for k := range inv.args {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			h = sim.Mix(h, strHash(k), strHash(fmt.Sprintf("%v", inv.args[k])))
		}
	}
	inv.argsHashed, inv.argsH = true, h
	return h
}

// strHash is FNV-1a.
func strHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// runMemoHit completes a memoized step: after the cache-lookup delay
// (attributed as CompMemoHit) the step's outputs are materialized replica
// by replica — downstream consumers read real keys, and in durable mode the
// caller's completion still routes through commitStep — without acquiring a
// container or executing.
func (d *Deployment) runMemoHit(inv *invocation, id dag.NodeID, onDone func(failed bool)) {
	t0 := d.rt.Env.Now()
	d.rt.Env.Schedule(d.opts.FastPath.MemoLookup, func() {
		if inv.abandoned {
			return
		}
		d.span(inv, id, 0, "memo", t0)
		if d.deadlineExceeded(inv) {
			d.failDeadline(inv, id, "memo")
			d.pubStep(inv, id, obs.StepFailed)
			onDone(true)
			return
		}
		node := d.g.Node(id)
		workerID := inv.place[id]
		rep := 0
		var step func()
		step = func() {
			if rep == node.Width {
				onDone(false)
				return
			}
			r := rep
			rep++
			d.storeOutputs(inv, id, r, workerID, step)
		}
		step()
	})
}
