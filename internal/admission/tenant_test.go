package admission

import (
	"errors"
	"testing"
	"time"

	"repro/internal/sim"
)

// advance moves the simulation clock forward by d.
func advance(env *sim.Env, d time.Duration) {
	env.Schedule(d, func() {})
	env.Run()
}

func TestTenantWeightedShares(t *testing.T) {
	a, err := New(sim.NewEnv(), Config{
		RatePerSec:    10,
		MaxConcurrent: 10,
		Tenants: map[string]TenantConfig{
			"small": {Weight: 1},
			"big":   {Weight: 3},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	stats := a.TenantStats()
	if len(stats) != 2 {
		t.Fatalf("got %d tenant stats, want 2", len(stats))
	}
	big, small := stats[0], stats[1]
	if big.Tenant != "big" || small.Tenant != "small" {
		t.Fatalf("stats not sorted by tenant: %q, %q", big.Tenant, small.Tenant)
	}
	if small.RatePerSec != 2.5 || big.RatePerSec != 7.5 {
		t.Fatalf("derived rates = %v/%v, want 2.5/7.5", small.RatePerSec, big.RatePerSec)
	}
	// ceil(10 * 1/4) = 3, ceil(10 * 3/4) = 8.
	if small.MaxConcurrent != 3 || big.MaxConcurrent != 8 {
		t.Fatalf("derived caps = %d/%d, want 3/8", small.MaxConcurrent, big.MaxConcurrent)
	}
}

func TestTenantOverridesBeatDerivation(t *testing.T) {
	a, err := New(sim.NewEnv(), Config{
		RatePerSec:    100,
		MaxConcurrent: 100,
		Tenants: map[string]TenantConfig{
			"t": {RatePerSec: 1, Burst: 1, MaxConcurrent: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := a.TenantStats()[0]
	if st.RatePerSec != 1 || st.MaxConcurrent != 2 {
		t.Fatalf("overrides not applied: %+v", st)
	}
}

func TestTenantRateClipsNoisyNeighbor(t *testing.T) {
	env := sim.NewEnv()
	a, err := New(env, Config{
		RatePerSec: 100,
		Tenants: map[string]TenantConfig{
			"noisy": {RatePerSec: 1, Burst: 1},
			"quiet": {RatePerSec: 1, Burst: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.AdmitTenant("wf", "noisy"); err != nil {
		t.Fatalf("first noisy admit rejected: %v", err)
	}
	_, err = a.AdmitTenant("wf", "noisy")
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("noisy over-rate admit succeeded (err=%v)", err)
	}
	var aerr *Error
	if !errors.As(err, &aerr) || aerr.Reason != "tenant-rate" || aerr.Tenant != "noisy" {
		t.Fatalf("rejection = %#v, want tenant-rate for noisy", err)
	}
	if aerr.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want positive", aerr.RetryAfter)
	}
	// The noisy tenant draining its own bucket must not touch quiet's.
	if _, err := a.AdmitTenant("wf", "quiet"); err != nil {
		t.Fatalf("quiet tenant rejected after noisy overload: %v", err)
	}
	st := a.TenantStats()
	for _, s := range st {
		switch s.Tenant {
		case "noisy":
			if s.Admitted != 1 || s.RejectedRate != 1 {
				t.Fatalf("noisy stats = %+v, want 1 admitted / 1 rate-rejected", s)
			}
		case "quiet":
			if s.Admitted != 1 || s.RejectedRate != 0 {
				t.Fatalf("quiet stats = %+v, want 1 admitted / 0 rejected", s)
			}
		}
	}
}

func TestTenantConcurrencyCapAndRelease(t *testing.T) {
	env := sim.NewEnv()
	a, err := New(env, Config{
		MaxConcurrent: 10,
		Tenants:       map[string]TenantConfig{"t": {MaxConcurrent: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	release, err := a.AdmitTenant("wf", "t")
	if err != nil {
		t.Fatal(err)
	}
	_, err = a.AdmitTenant("wf", "t")
	var aerr *Error
	if !errors.As(err, &aerr) || aerr.Reason != "tenant-concurrency" || aerr.Tenant != "t" {
		t.Fatalf("rejection = %#v, want tenant-concurrency for t", err)
	}
	if a.TenantLive("t") != 1 || a.Live() != 1 {
		t.Fatalf("live = %d/%d, want 1/1", a.TenantLive("t"), a.Live())
	}
	release()
	if a.TenantLive("t") != 0 || a.Live() != 0 {
		t.Fatalf("post-release live = %d/%d, want 0/0", a.TenantLive("t"), a.Live())
	}
	// The closure is idempotent: a double release must not underflow.
	release()
	if a.Live() != 0 {
		t.Fatalf("double release moved Live to %d", a.Live())
	}
	if _, err := a.AdmitTenant("wf", "t"); err != nil {
		t.Fatalf("post-release admit rejected: %v", err)
	}
}

func TestUnconfiguredTenantPassesGlobalGatesOnly(t *testing.T) {
	a, err := New(sim.NewEnv(), Config{
		MaxConcurrent: 1,
		Tenants:       map[string]TenantConfig{"configured": {}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.AdmitTenant("wf", "adhoc"); err != nil {
		t.Fatalf("ad-hoc tenant rejected: %v", err)
	}
	// Global cap is full: the next request is rejected at the global gate
	// and the rejection is attributed to the configured tenant.
	_, err = a.AdmitTenant("wf", "configured")
	var aerr *Error
	if !errors.As(err, &aerr) || aerr.Reason != "concurrency" {
		t.Fatalf("rejection = %#v, want global concurrency", err)
	}
	var adhoc, conf TenantStats
	for _, s := range a.TenantStats() {
		switch s.Tenant {
		case "adhoc":
			adhoc = s
		case "configured":
			conf = s
		}
	}
	if adhoc.Admitted != 1 || adhoc.RatePerSec != 0 || adhoc.MaxConcurrent != 0 {
		t.Fatalf("ad-hoc stats = %+v, want 1 admitted with no tenant limits", adhoc)
	}
	if conf.RejectedGlobal != 1 || conf.RejectedConcurrency != 0 {
		t.Fatalf("configured stats = %+v, want 1 global rejection", conf)
	}
}

func TestBurstClampWithFractionalRate(t *testing.T) {
	// RatePerSec < 1 must still leave a workable bucket: Burst clamps to 1,
	// not to the fractional rate (which would reject every arrival forever).
	a, err := New(sim.NewEnv(), Config{RatePerSec: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Admit("wf"); err != nil {
		t.Fatalf("first admit on fractional-rate bucket rejected: %v", err)
	}
	if err := a.Admit("wf"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second immediate admit succeeded (err=%v)", err)
	}
	// Same clamp for a tenant bucket with a fractional override.
	b, err := New(sim.NewEnv(), Config{
		Tenants: map[string]TenantConfig{"slow": {RatePerSec: 0.25}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.AdmitTenant("wf", "slow"); err != nil {
		t.Fatalf("tenant with fractional rate rejected its first request: %v", err)
	}
	if _, err := b.AdmitTenant("wf", "slow"); !errors.Is(err, ErrOverloaded) {
		t.Fatal("tenant bucket past its clamped burst admitted")
	}
}

func TestRefillCapsAcrossLargeTimeJump(t *testing.T) {
	env := sim.NewEnv()
	a, err := New(env, Config{
		RatePerSec: 2,
		Burst:      3,
		Tenants:    map[string]TenantConfig{"t": {RatePerSec: 2, Burst: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Drain both buckets.
	for i := 0; i < 3; i++ {
		if _, err := a.AdmitTenant("wf", "t"); err != nil {
			t.Fatalf("drain admit %d rejected: %v", i, err)
		}
	}
	// A week of idle virtual time must refill to burst, not accumulate.
	advance(env, 7*24*time.Hour)
	for i := 0; i < 3; i++ {
		if _, err := a.AdmitTenant("wf", "t"); err != nil {
			t.Fatalf("post-jump admit %d rejected: %v", i, err)
		}
	}
	if _, err := a.AdmitTenant("wf", "t"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("admit past burst after time jump succeeded (err=%v)", err)
	}
}

func TestConcurrencyRetryFromHoldEWMA(t *testing.T) {
	env := sim.NewEnv()
	a, err := New(env, Config{MaxConcurrent: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Before any completed hold the retry hint is the fixed fallback.
	release, err := a.AdmitTenant("wf", "")
	if err != nil {
		t.Fatal(err)
	}
	_, err = a.AdmitTenant("wf", "")
	var aerr *Error
	if !errors.As(err, &aerr) || aerr.RetryAfter != time.Second {
		t.Fatalf("pre-sample retry = %v, want the 1s fallback", err)
	}
	advance(env, 2*time.Second)
	release()
	if got := a.MeanHold(); got != 2*time.Second {
		t.Fatalf("MeanHold after first sample = %v, want 2s", got)
	}
	// Second hold of 4s folds in at alpha=0.2: 0.8*2s + 0.2*4s = 2.4s.
	release2, err := a.AdmitTenant("wf", "")
	if err != nil {
		t.Fatal(err)
	}
	advance(env, 4*time.Second)
	release2()
	if got := a.MeanHold(); got != 2400*time.Millisecond {
		t.Fatalf("MeanHold after second sample = %v, want 2.4s", got)
	}
	// With one slot live again, the concurrency retry hint is meanHold/live.
	if _, err := a.AdmitTenant("wf", ""); err != nil {
		t.Fatal(err)
	}
	_, err = a.AdmitTenant("wf", "")
	if !errors.As(err, &aerr) || aerr.RetryAfter != 2400*time.Millisecond {
		t.Fatalf("EWMA retry = %v, want 2.4s", err)
	}
}

func TestPlainAdmitReleaseFeedsEWMA(t *testing.T) {
	env := sim.NewEnv()
	a, err := New(env, Config{MaxConcurrent: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Closure-less Admit/Release pairs FIFO: the first Release observes the
	// first Admit's instant.
	if err := a.Admit("wf"); err != nil {
		t.Fatal(err)
	}
	advance(env, time.Second)
	if err := a.Admit("wf"); err != nil {
		t.Fatal(err)
	}
	advance(env, 2*time.Second)
	a.Release() // first admit: held 3s
	if got := a.MeanHold(); got != 3*time.Second {
		t.Fatalf("MeanHold = %v, want 3s from the oldest admit", got)
	}
	a.Release()
	if a.Live() != 0 {
		t.Fatalf("Live = %d after paired releases, want 0", a.Live())
	}
}
