// Package admission implements overload admission control for workflow
// starts: a token-bucket rate limiter plus a concurrent-workflow cap, with
// an optional per-tenant weighted layer underneath.
//
// Rationale (docs/OVERLOAD.md): an open-loop arrival stream offered past
// the cluster's saturation point piles unbounded work onto the engines and
// per-function Acquire queues, and every latency metric collapses. The
// controller sits at the front door — the gateway's invoke endpoint and the
// faasflow API — and rejects the excess immediately with a typed error
// carrying a Retry-After hint, so admitted work keeps meeting its deadline
// (graceful degradation: goodput flat-tops instead of collapsing).
//
// The per-tenant layer (docs/TENANCY.md) guards against the noisy-neighbor
// failure mode: one tenant offering load past saturation must not be able
// to drain the shared bucket or occupy every concurrency slot. Each
// configured tenant gets its own token bucket and concurrency cap sized
// from its weight's share of the global limits (or explicit overrides), so
// a misbehaving tenant is clipped to its fair share at the front door while
// well-behaved tenants keep their full allocation.
//
// The buckets run on virtual time, so admission decisions are as
// deterministic as everything else in the simulation: same arrival
// schedule, same decisions, same snapshot bytes.
package admission

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// ErrOverloaded is the sentinel matched by errors.Is for every admission
// rejection. Callers branch on it; *Error carries the details.
var ErrOverloaded = errors.New("admission: overloaded")

// Error is an admission rejection: which limit fired, which tenant the
// request carried, and how long the client should wait before retrying.
type Error struct {
	Reason     string        // "rate" | "concurrency" | "tenant-rate" | "tenant-concurrency"
	Tenant     string        // tenant identity of the rejected request ("" = untenanted)
	RetryAfter time.Duration // suggested client backoff (>= 0)
}

func (e *Error) Error() string {
	if e.Tenant != "" {
		return fmt.Sprintf("admission: overloaded (%s limit, tenant %q), retry after %v",
			e.Reason, e.Tenant, e.RetryAfter)
	}
	return fmt.Sprintf("admission: overloaded (%s limit), retry after %v", e.Reason, e.RetryAfter)
}

// Is makes errors.Is(err, ErrOverloaded) succeed for every rejection.
func (e *Error) Is(target error) bool { return target == ErrOverloaded }

// TenantConfig is one tenant's slice of the controller. Zero-value fields
// derive from the tenant's weighted share of the global limits.
type TenantConfig struct {
	// Weight is the tenant's relative share of the global limits among all
	// configured tenants. 0 defaults to 1.
	Weight float64
	// RatePerSec overrides the tenant's sustained admission rate. 0 derives
	// Weight/ΣWeights of the global RatePerSec (no tenant rate limit when
	// the global rate limit is off too).
	RatePerSec float64
	// Burst overrides the tenant's bucket capacity. 0 defaults to
	// max(1, tenant rate).
	Burst float64
	// MaxConcurrent overrides the tenant's in-flight cap. 0 derives
	// ceil(Weight/ΣWeights × global MaxConcurrent) (no tenant cap when the
	// global cap is off too).
	MaxConcurrent int
}

// Config fixes the controller's limits. Zero values disable the
// corresponding limit, so Config{} admits everything.
type Config struct {
	// RatePerSec is the sustained workflow-admission rate. 0 disables
	// rate limiting.
	RatePerSec float64
	// Burst is the token bucket capacity — how many back-to-back arrivals
	// are admitted before the sustained rate gates. 0 defaults to
	// max(1, RatePerSec).
	Burst float64
	// MaxConcurrent caps admitted workflows in flight (admitted minus
	// released). 0 disables the cap.
	MaxConcurrent int
	// Tenants layers per-tenant weighted buckets and caps under the global
	// limits. Requests from tenants not in the map (including the empty
	// tenant) pass only the global gates but are still tracked per tenant
	// in TenantStats.
	Tenants map[string]TenantConfig
}

// Validate reports configuration mistakes.
func (c Config) Validate() error {
	switch {
	case c.RatePerSec < 0:
		return fmt.Errorf("admission: RatePerSec = %v, must be >= 0", c.RatePerSec)
	case c.Burst < 0:
		return fmt.Errorf("admission: Burst = %v, must be >= 0", c.Burst)
	case c.MaxConcurrent < 0:
		return fmt.Errorf("admission: MaxConcurrent = %d, must be >= 0", c.MaxConcurrent)
	}
	for name, tc := range c.Tenants {
		switch {
		case tc.Weight < 0:
			return fmt.Errorf("admission: tenant %q Weight = %v, must be >= 0", name, tc.Weight)
		case tc.RatePerSec < 0:
			return fmt.Errorf("admission: tenant %q RatePerSec = %v, must be >= 0", name, tc.RatePerSec)
		case tc.Burst < 0:
			return fmt.Errorf("admission: tenant %q Burst = %v, must be >= 0", name, tc.Burst)
		case tc.MaxConcurrent < 0:
			return fmt.Errorf("admission: tenant %q MaxConcurrent = %d, must be >= 0", name, tc.MaxConcurrent)
		}
	}
	return nil
}

// Stats aggregates the controller's lifetime counters.
type Stats struct {
	Admitted            int64
	RejectedRate        int64
	RejectedConcurrency int64
}

// Rejected sums rejections across reasons.
func (s Stats) Rejected() int64 { return s.RejectedRate + s.RejectedConcurrency }

// TenantStats is one tenant's slice of the lifetime counters. Weight and
// the effective limits are echoed so surfaces (gateway /tenants) can render
// the configuration next to the counters.
type TenantStats struct {
	Tenant              string  `json:"tenant"`
	Weight              float64 `json:"weight"`
	RatePerSec          float64 `json:"ratePerSec"`    // effective; 0 = unlimited
	MaxConcurrent       int     `json:"maxConcurrent"` // effective; 0 = unlimited
	Live                int     `json:"live"`
	Admitted            int64   `json:"admitted"`
	Released            int64   `json:"released"`
	RejectedRate        int64   `json:"rejectedRate"`        // tenant bucket rejections
	RejectedConcurrency int64   `json:"rejectedConcurrency"` // tenant cap rejections
	RejectedGlobal      int64   `json:"rejectedGlobal"`      // global-limit rejections attributed to the tenant
}

// tenantState is one tenant's runtime bucket. Unconfigured tenants get a
// limitless state (rate 0, maxConc 0) so per-tenant accounting still works.
type tenantState struct {
	name    string
	weight  float64
	rate    float64 // 0 = no tenant rate limit
	burst   float64
	maxConc int // 0 = no tenant concurrency cap

	tokens float64
	last   sim.Time
	live   int

	admitted   int64
	released   int64
	rejRate    int64
	rejConc    int64
	rejGlobal  int64
	configured bool
}

// refill accrues tenant tokens for elapsed virtual time, capped at burst.
func (t *tenantState) refill(now sim.Time) {
	if now > t.last {
		t.tokens += (now - t.last).Duration().Seconds() * t.rate
		if t.tokens > t.burst {
			t.tokens = t.burst
		}
	}
	t.last = now
}

// pendingAdmit records one closure-less Admit so Release can attribute the
// holding-time sample and the release event.
type pendingAdmit struct {
	workflow string
	at       sim.Time
}

// Controller is a deterministic admission controller on the simulation
// clock. A nil *Controller is valid and admits everything, so call sites
// need no gating.
type Controller struct {
	env *sim.Env
	cfg Config
	bus *obs.Bus

	tokens float64
	last   sim.Time
	live   int
	stats  Stats

	tenants map[string]*tenantState

	// pending tracks closure-less Admit calls (FIFO) so plain Release can
	// recover the admit instant for the holding-time estimator.
	pending []pendingAdmit

	// meanHold is a deterministic EWMA of observed workflow holding times
	// (admit → release), feeding concurrencyRetry when rate limiting is off.
	meanHold  time.Duration
	holdCount int64
}

// holdAlpha is the EWMA smoothing factor for holding-time samples.
const holdAlpha = 0.2

// New builds a controller. Every bucket starts full. Tenant shares are
// computed over the configured tenant set: tenant rate defaults to
// Weight/ΣWeights of the global rate, tenant concurrency to the same share
// of the global cap (rounded up so every tenant can run at least one).
func New(env *sim.Env, cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Burst == 0 && cfg.RatePerSec > 0 {
		cfg.Burst = cfg.RatePerSec
		if cfg.Burst < 1 {
			cfg.Burst = 1
		}
	}
	a := &Controller{
		env:     env,
		cfg:     cfg,
		tokens:  cfg.Burst,
		last:    env.Now(),
		tenants: map[string]*tenantState{},
	}
	if len(cfg.Tenants) > 0 {
		names := make([]string, 0, len(cfg.Tenants))
		total := 0.0
		for name, tc := range cfg.Tenants {
			names = append(names, name)
			w := tc.Weight
			if w == 0 {
				w = 1
			}
			total += w
		}
		sort.Strings(names)
		for _, name := range names {
			tc := cfg.Tenants[name]
			w := tc.Weight
			if w == 0 {
				w = 1
			}
			ts := &tenantState{name: name, weight: w, last: env.Now(), configured: true}
			ts.rate = tc.RatePerSec
			if ts.rate == 0 && cfg.RatePerSec > 0 {
				ts.rate = cfg.RatePerSec * w / total
			}
			ts.burst = tc.Burst
			if ts.burst == 0 && ts.rate > 0 {
				ts.burst = ts.rate
				if ts.burst < 1 {
					ts.burst = 1
				}
			}
			ts.maxConc = tc.MaxConcurrent
			if ts.maxConc == 0 && cfg.MaxConcurrent > 0 {
				ts.maxConc = int(math.Ceil(float64(cfg.MaxConcurrent) * w / total))
			}
			ts.tokens = ts.burst
			a.tenants[name] = ts
		}
	}
	return a, nil
}

// SetBus attaches (or detaches, with nil) an observability bus; every
// decision publishes an AdmissionEvent and every release an
// AdmissionReleaseEvent.
func (a *Controller) SetBus(b *obs.Bus) {
	if a != nil {
		a.bus = b
	}
}

// tenantOf returns the tenant's bucket state, creating a limitless tracker
// for tenants outside the configured set so accounting stays per tenant.
func (a *Controller) tenantOf(tenant string) *tenantState {
	ts := a.tenants[tenant]
	if ts == nil {
		ts = &tenantState{name: tenant, weight: 1, last: a.env.Now()}
		a.tenants[tenant] = ts
	}
	return ts
}

// refill accrues global tokens for the virtual time elapsed since the last
// decision, capped at the burst size.
func (a *Controller) refill() {
	now := a.env.Now()
	if now > a.last {
		a.tokens += (now - a.last).Duration().Seconds() * a.cfg.RatePerSec
		if a.tokens > a.cfg.Burst {
			a.tokens = a.cfg.Burst
		}
	}
	a.last = now
}

// admit runs every gate — global concurrency, tenant concurrency, global
// rate, tenant rate — before consuming from either bucket, so a rejection
// at a later gate never burns tokens taken by an earlier one.
func (a *Controller) admit(workflow, tenant string) error {
	ts := a.tenantOf(tenant)
	if a.cfg.MaxConcurrent > 0 && a.live >= a.cfg.MaxConcurrent {
		a.stats.RejectedConcurrency++
		ts.rejGlobal++
		err := &Error{Reason: "concurrency", Tenant: tenant, RetryAfter: a.concurrencyRetry()}
		a.pub(workflow, tenant, false, err.Reason, err.RetryAfter)
		return err
	}
	if ts.maxConc > 0 && ts.live >= ts.maxConc {
		ts.rejConc++
		a.stats.RejectedConcurrency++
		err := &Error{Reason: "tenant-concurrency", Tenant: tenant, RetryAfter: a.concurrencyRetry()}
		a.pub(workflow, tenant, false, err.Reason, err.RetryAfter)
		return err
	}
	if a.cfg.RatePerSec > 0 {
		a.refill()
		if a.tokens < 1 {
			a.stats.RejectedRate++
			ts.rejGlobal++
			err := &Error{Reason: "rate", Tenant: tenant, RetryAfter: tokenRetry(a.tokens, a.cfg.RatePerSec)}
			a.pub(workflow, tenant, false, err.Reason, err.RetryAfter)
			return err
		}
	}
	if ts.rate > 0 {
		ts.refill(a.env.Now())
		if ts.tokens < 1 {
			ts.rejRate++
			a.stats.RejectedRate++
			err := &Error{Reason: "tenant-rate", Tenant: tenant, RetryAfter: tokenRetry(ts.tokens, ts.rate)}
			a.pub(workflow, tenant, false, err.Reason, err.RetryAfter)
			return err
		}
	}
	// Every gate passed: consume from both buckets atomically.
	if a.cfg.RatePerSec > 0 {
		a.tokens--
	}
	if ts.rate > 0 {
		ts.tokens--
	}
	a.live++
	ts.live++
	a.stats.Admitted++
	ts.admitted++
	a.pub(workflow, tenant, true, "ok", 0)
	return nil
}

// tokenRetry suggests a backoff for a rate rejection: the time until the
// bucket accrues the missing fraction of a token.
func tokenRetry(tokens, rate float64) time.Duration {
	retry := time.Duration((1 - tokens) / rate * float64(time.Second))
	if retry < time.Millisecond {
		retry = time.Millisecond
	}
	return retry
}

// Admit decides one workflow start for workflow (a label for metrics, not
// an identity), attributed to the empty tenant. On success it consumes a
// token and a concurrency slot — the caller must pair it with Release when
// the workflow finishes. On overload it returns an *Error matching
// ErrOverloaded.
func (a *Controller) Admit(workflow string) error {
	if a == nil {
		return nil
	}
	if err := a.admit(workflow, ""); err != nil {
		return err
	}
	a.pending = append(a.pending, pendingAdmit{workflow: workflow, at: a.env.Now()})
	return nil
}

// AdmitTenant decides one workflow start attributed to tenant. On success
// it returns an idempotent release closure the caller must invoke when the
// workflow finishes; on overload it returns an *Error (matching
// ErrOverloaded) whose Tenant field names the rejected tenant.
func (a *Controller) AdmitTenant(workflow, tenant string) (release func(), err error) {
	if a == nil {
		return func() {}, nil
	}
	if err := a.admit(workflow, tenant); err != nil {
		return nil, err
	}
	at := a.env.Now()
	released := false
	return func() {
		if released {
			return
		}
		released = true
		a.release(workflow, tenant, at)
	}, nil
}

// concurrencyRetry suggests a backoff for concurrency rejections: the
// bucket's token period when rate limiting is on; otherwise the expected
// wait for a slot to free, estimated from the EWMA of observed holding
// times spread across the live workflows. With no completed holds observed
// yet it falls back to a fixed second.
func (a *Controller) concurrencyRetry() time.Duration {
	if a.cfg.RatePerSec > 0 {
		return time.Duration(float64(time.Second) / a.cfg.RatePerSec)
	}
	if a.holdCount > 0 && a.meanHold > 0 {
		div := a.live
		if div < 1 {
			div = 1
		}
		retry := a.meanHold / time.Duration(div)
		if retry < time.Millisecond {
			retry = time.Millisecond
		}
		return retry
	}
	return time.Second
}

// MeanHold reports the EWMA of observed holding times (0 before the first
// release with a known admit instant).
func (a *Controller) MeanHold() time.Duration {
	if a == nil {
		return 0
	}
	return a.meanHold
}

// release is the shared release core: decrement live counts, fold the
// holding time into the EWMA, and publish the release event.
func (a *Controller) release(workflow, tenant string, admittedAt sim.Time) {
	if a.live <= 0 {
		panic("admission: Release without matching Admit")
	}
	a.live--
	ts := a.tenantOf(tenant)
	if ts.live > 0 {
		ts.live--
	}
	ts.released++
	held := (a.env.Now() - admittedAt).Duration()
	if held >= 0 {
		if a.holdCount == 0 {
			a.meanHold = held
		} else {
			a.meanHold = time.Duration((1-holdAlpha)*float64(a.meanHold) + holdAlpha*float64(held))
		}
		a.holdCount++
	}
	if a.bus.Active() {
		a.bus.Publish(obs.AdmissionReleaseEvent{
			Workflow:   workflow,
			Tenant:     tenant,
			Live:       a.live,
			TenantLive: ts.live,
			Held:       held,
			At:         a.env.Now(),
		})
	}
}

// Release returns the concurrency slot taken by the oldest outstanding
// Admit (AdmitTenant pairs with its own closure instead).
func (a *Controller) Release() {
	if a == nil {
		return
	}
	var p pendingAdmit
	if len(a.pending) > 0 {
		p = a.pending[0]
		a.pending = a.pending[:copy(a.pending, a.pending[1:])]
	} else {
		p.at = a.env.Now() // zero-length hold: no admit instant recorded
	}
	a.release(p.workflow, "", p.at)
}

// Live reports admitted workflows currently in flight.
func (a *Controller) Live() int {
	if a == nil {
		return 0
	}
	return a.live
}

// TenantLive reports a tenant's admitted workflows currently in flight.
func (a *Controller) TenantLive(tenant string) int {
	if a == nil {
		return 0
	}
	if ts := a.tenants[tenant]; ts != nil {
		return ts.live
	}
	return 0
}

// Stats returns a snapshot of lifetime counters.
func (a *Controller) Stats() Stats {
	if a == nil {
		return Stats{}
	}
	return a.stats
}

// TenantStats returns per-tenant counters, sorted by tenant name. Both
// configured tenants (even if never seen) and ad-hoc tenants that sent
// traffic appear.
func (a *Controller) TenantStats() []TenantStats {
	if a == nil {
		return nil
	}
	names := make([]string, 0, len(a.tenants))
	for name := range a.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]TenantStats, 0, len(names))
	for _, name := range names {
		ts := a.tenants[name]
		out = append(out, TenantStats{
			Tenant:              ts.name,
			Weight:              ts.weight,
			RatePerSec:          ts.rate,
			MaxConcurrent:       ts.maxConc,
			Live:                ts.live,
			Admitted:            ts.admitted,
			Released:            ts.released,
			RejectedRate:        ts.rejRate,
			RejectedConcurrency: ts.rejConc,
			RejectedGlobal:      ts.rejGlobal,
		})
	}
	return out
}

func (a *Controller) pub(workflow, tenant string, admitted bool, reason string, retry time.Duration) {
	if !a.bus.Active() {
		return
	}
	tenantLive := 0
	if ts := a.tenants[tenant]; ts != nil {
		tenantLive = ts.live
	}
	a.bus.Publish(obs.AdmissionEvent{
		Workflow:   workflow,
		Tenant:     tenant,
		Admitted:   admitted,
		Reason:     reason,
		Live:       a.live,
		TenantLive: tenantLive,
		RetryAfter: retry,
		At:         a.env.Now(),
	})
}
