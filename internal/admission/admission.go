// Package admission implements overload admission control for workflow
// starts: a token-bucket rate limiter plus a concurrent-workflow cap.
//
// Rationale (docs/OVERLOAD.md): an open-loop arrival stream offered past
// the cluster's saturation point piles unbounded work onto the engines and
// per-function Acquire queues, and every latency metric collapses. The
// controller sits at the front door — the gateway's invoke endpoint and the
// faasflow API — and rejects the excess immediately with a typed error
// carrying a Retry-After hint, so admitted work keeps meeting its deadline
// (graceful degradation: goodput flat-tops instead of collapsing).
//
// The bucket runs on virtual time, so admission decisions are as
// deterministic as everything else in the simulation: same arrival
// schedule, same decisions, same snapshot bytes.
package admission

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// ErrOverloaded is the sentinel matched by errors.Is for every admission
// rejection. Callers branch on it; *Error carries the details.
var ErrOverloaded = errors.New("admission: overloaded")

// Error is an admission rejection: which limit fired and how long the
// client should wait before retrying.
type Error struct {
	Reason     string        // "rate" | "concurrency"
	RetryAfter time.Duration // suggested client backoff (>= 0)
}

func (e *Error) Error() string {
	return fmt.Sprintf("admission: overloaded (%s limit), retry after %v", e.Reason, e.RetryAfter)
}

// Is makes errors.Is(err, ErrOverloaded) succeed for every rejection.
func (e *Error) Is(target error) bool { return target == ErrOverloaded }

// Config fixes the controller's limits. Zero values disable the
// corresponding limit, so Config{} admits everything.
type Config struct {
	// RatePerSec is the sustained workflow-admission rate. 0 disables
	// rate limiting.
	RatePerSec float64
	// Burst is the token bucket capacity — how many back-to-back arrivals
	// are admitted before the sustained rate gates. 0 defaults to
	// max(1, RatePerSec).
	Burst float64
	// MaxConcurrent caps admitted workflows in flight (admitted minus
	// released). 0 disables the cap.
	MaxConcurrent int
}

// Validate reports configuration mistakes.
func (c Config) Validate() error {
	switch {
	case c.RatePerSec < 0:
		return fmt.Errorf("admission: RatePerSec = %v, must be >= 0", c.RatePerSec)
	case c.Burst < 0:
		return fmt.Errorf("admission: Burst = %v, must be >= 0", c.Burst)
	case c.MaxConcurrent < 0:
		return fmt.Errorf("admission: MaxConcurrent = %d, must be >= 0", c.MaxConcurrent)
	}
	return nil
}

// Stats aggregates the controller's lifetime counters.
type Stats struct {
	Admitted            int64
	RejectedRate        int64
	RejectedConcurrency int64
}

// Rejected sums rejections across reasons.
func (s Stats) Rejected() int64 { return s.RejectedRate + s.RejectedConcurrency }

// Controller is a deterministic admission controller on the simulation
// clock. A nil *Controller is valid and admits everything, so call sites
// need no gating.
type Controller struct {
	env *sim.Env
	cfg Config
	bus *obs.Bus

	tokens float64
	last   sim.Time
	live   int
	stats  Stats
}

// New builds a controller. The bucket starts full.
func New(env *sim.Env, cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Burst == 0 && cfg.RatePerSec > 0 {
		cfg.Burst = cfg.RatePerSec
		if cfg.Burst < 1 {
			cfg.Burst = 1
		}
	}
	return &Controller{env: env, cfg: cfg, tokens: cfg.Burst, last: env.Now()}, nil
}

// SetBus attaches (or detaches, with nil) an observability bus; every
// decision publishes an AdmissionEvent.
func (a *Controller) SetBus(b *obs.Bus) {
	if a != nil {
		a.bus = b
	}
}

// refill accrues tokens for the virtual time elapsed since the last
// decision, capped at the burst size.
func (a *Controller) refill() {
	now := a.env.Now()
	if now > a.last {
		a.tokens += (now - a.last).Duration().Seconds() * a.cfg.RatePerSec
		if a.tokens > a.cfg.Burst {
			a.tokens = a.cfg.Burst
		}
	}
	a.last = now
}

// Admit decides one workflow start for workflow (a label for metrics, not
// an identity). On success it consumes a token and a concurrency slot —
// the caller must pair it with Release when the workflow finishes. On
// overload it returns an *Error matching ErrOverloaded.
func (a *Controller) Admit(workflow string) error {
	if a == nil {
		return nil
	}
	if a.cfg.MaxConcurrent > 0 && a.live >= a.cfg.MaxConcurrent {
		a.stats.RejectedConcurrency++
		err := &Error{Reason: "concurrency", RetryAfter: a.concurrencyRetry()}
		a.pub(workflow, false, err.Reason, err.RetryAfter)
		return err
	}
	if a.cfg.RatePerSec > 0 {
		a.refill()
		if a.tokens < 1 {
			a.stats.RejectedRate++
			deficit := (1 - a.tokens) / a.cfg.RatePerSec
			retry := time.Duration(deficit * float64(time.Second))
			if retry < time.Millisecond {
				retry = time.Millisecond
			}
			err := &Error{Reason: "rate", RetryAfter: retry}
			a.pub(workflow, false, err.Reason, err.RetryAfter)
			return err
		}
		a.tokens--
	}
	a.live++
	a.stats.Admitted++
	a.pub(workflow, true, "ok", 0)
	return nil
}

// concurrencyRetry suggests a backoff for concurrency rejections: the
// bucket's token period when rate limiting is on, else a fixed second —
// the controller cannot know when a slot frees.
func (a *Controller) concurrencyRetry() time.Duration {
	if a.cfg.RatePerSec > 0 {
		return time.Duration(float64(time.Second) / a.cfg.RatePerSec)
	}
	return time.Second
}

// Release returns the concurrency slot taken by a successful Admit.
func (a *Controller) Release() {
	if a == nil {
		return
	}
	if a.live <= 0 {
		panic("admission: Release without matching Admit")
	}
	a.live--
}

// Live reports admitted workflows currently in flight.
func (a *Controller) Live() int {
	if a == nil {
		return 0
	}
	return a.live
}

// Stats returns a snapshot of lifetime counters.
func (a *Controller) Stats() Stats {
	if a == nil {
		return Stats{}
	}
	return a.stats
}

func (a *Controller) pub(workflow string, admitted bool, reason string, retry time.Duration) {
	if !a.bus.Active() {
		return
	}
	a.bus.Publish(obs.AdmissionEvent{
		Workflow:   workflow,
		Admitted:   admitted,
		Reason:     reason,
		Live:       a.live,
		RetryAfter: retry,
		At:         a.env.Now(),
	})
}
