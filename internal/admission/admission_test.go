package admission

import (
	"errors"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

func TestNilControllerAdmitsEverything(t *testing.T) {
	var a *Controller
	if err := a.Admit("wf"); err != nil {
		t.Fatalf("nil controller rejected: %v", err)
	}
	a.Release()
	if a.Live() != 0 || a.Stats() != (Stats{}) {
		t.Fatalf("nil controller has state: live=%d stats=%+v", a.Live(), a.Stats())
	}
}

func TestConfigValidate(t *testing.T) {
	for _, cfg := range []Config{
		{RatePerSec: -1},
		{Burst: -1},
		{MaxConcurrent: -1},
	} {
		if _, err := New(sim.NewEnv(), cfg); err == nil {
			t.Errorf("New(%+v) accepted invalid config", cfg)
		}
	}
}

func TestTokenBucket(t *testing.T) {
	env := sim.NewEnv()
	a, err := New(env, Config{RatePerSec: 2, Burst: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Burst of 3 admits back-to-back, then the bucket is dry.
	for i := 0; i < 3; i++ {
		if err := a.Admit("wf"); err != nil {
			t.Fatalf("burst admit %d rejected: %v", i, err)
		}
	}
	err = a.Admit("wf")
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("dry bucket admitted (err=%v)", err)
	}
	var aerr *Error
	if !errors.As(err, &aerr) || aerr.Reason != "rate" {
		t.Fatalf("rejection = %#v, want *Error with rate reason", err)
	}
	if aerr.RetryAfter <= 0 || aerr.RetryAfter > time.Second {
		t.Fatalf("RetryAfter = %v, want within one token period (500ms)", aerr.RetryAfter)
	}
	// One second at 2 tokens/sec refills two admissions.
	env.Schedule(time.Second, func() {})
	env.Run()
	for i := 0; i < 2; i++ {
		if err := a.Admit("wf"); err != nil {
			t.Fatalf("post-refill admit %d rejected: %v", i, err)
		}
	}
	if err := a.Admit("wf"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-refill admit succeeded (err=%v)", err)
	}
	st := a.Stats()
	if st.Admitted != 5 || st.RejectedRate != 2 || st.RejectedConcurrency != 0 {
		t.Fatalf("stats = %+v, want 5 admitted / 2 rate-rejected", st)
	}
}

func TestConcurrencyCap(t *testing.T) {
	env := sim.NewEnv()
	a, err := New(env, Config{MaxConcurrent: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Admit("wf"); err != nil {
		t.Fatal(err)
	}
	if err := a.Admit("wf"); err != nil {
		t.Fatal(err)
	}
	err = a.Admit("wf")
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-cap admit succeeded (err=%v)", err)
	}
	var aerr *Error
	if !errors.As(err, &aerr) || aerr.Reason != "concurrency" {
		t.Fatalf("rejection = %#v, want concurrency reason", err)
	}
	a.Release()
	if err := a.Admit("wf"); err != nil {
		t.Fatalf("post-release admit rejected: %v", err)
	}
	if a.Live() != 2 {
		t.Fatalf("Live = %d, want 2", a.Live())
	}
}

func TestAdmissionEvents(t *testing.T) {
	env := sim.NewEnv()
	a, err := New(env, Config{MaxConcurrent: 1})
	if err != nil {
		t.Fatal(err)
	}
	bus := obs.NewBus()
	var got []obs.AdmissionEvent
	bus.Subscribe(func(ev obs.Event) {
		if e, ok := ev.(obs.AdmissionEvent); ok {
			got = append(got, e)
		}
	})
	a.SetBus(bus)
	_ = a.Admit("wf")
	_ = a.Admit("wf")
	if len(got) != 2 {
		t.Fatalf("got %d admission events, want 2", len(got))
	}
	if !got[0].Admitted || got[0].Reason != "ok" || got[0].Live != 1 {
		t.Fatalf("first event = %+v, want admitted ok live=1", got[0])
	}
	if got[1].Admitted || got[1].Reason != "concurrency" || got[1].RetryAfter <= 0 {
		t.Fatalf("second event = %+v, want concurrency rejection with RetryAfter", got[1])
	}
}
