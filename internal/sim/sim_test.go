package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	env := NewEnv()
	var got []int
	env.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	env.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	env.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	env.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if env.Now() != Time(30*time.Millisecond) {
		t.Fatalf("Now = %v, want 30ms", env.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	env := NewEnv()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		env.Schedule(5*time.Millisecond, func() { got = append(got, i) })
	}
	env.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events out of FIFO order: %v", got)
		}
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	env := NewEnv()
	fired := false
	env.Schedule(-time.Second, func() { fired = true })
	env.Run()
	if !fired {
		t.Fatal("negative-delay event did not fire")
	}
	if env.Now() != 0 {
		t.Fatalf("Now = %v, want 0", env.Now())
	}
}

func TestCancel(t *testing.T) {
	env := NewEnv()
	fired := false
	ev := env.Schedule(time.Millisecond, func() { fired = true })
	ev.Cancel()
	env.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
}

func TestCancelFromEarlierEvent(t *testing.T) {
	env := NewEnv()
	fired := false
	later := env.Schedule(2*time.Millisecond, func() { fired = true })
	env.Schedule(time.Millisecond, func() { later.Cancel() })
	env.Run()
	if fired {
		t.Fatal("event fired despite being canceled by an earlier event")
	}
}

func TestNestedScheduling(t *testing.T) {
	env := NewEnv()
	var at []Time
	env.Schedule(time.Millisecond, func() {
		env.Schedule(time.Millisecond, func() {
			at = append(at, env.Now())
		})
	})
	env.Run()
	if len(at) != 1 || at[0] != Time(2*time.Millisecond) {
		t.Fatalf("nested event fired at %v, want [2ms]", at)
	}
}

func TestScheduleInPastPanics(t *testing.T) {
	env := NewEnv()
	env.Schedule(10*time.Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("At in the past did not panic")
			}
		}()
		env.At(Time(time.Millisecond), func() {})
	})
	env.Run()
}

func TestNilCallbackPanics(t *testing.T) {
	env := NewEnv()
	defer func() {
		if recover() == nil {
			t.Error("nil callback did not panic")
		}
	}()
	env.Schedule(0, nil)
}

func TestRunUntil(t *testing.T) {
	env := NewEnv()
	var fired []int
	env.Schedule(time.Millisecond, func() { fired = append(fired, 1) })
	env.Schedule(3*time.Millisecond, func() { fired = append(fired, 3) })
	env.RunUntil(Time(2 * time.Millisecond))
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("fired = %v, want [1]", fired)
	}
	if env.Now() != Time(2*time.Millisecond) {
		t.Fatalf("Now = %v, want 2ms", env.Now())
	}
	env.RunUntil(Time(5 * time.Millisecond))
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want two events", fired)
	}
}

func TestRunUntilDoesNotRewindClock(t *testing.T) {
	env := NewEnv()
	env.Schedule(10*time.Millisecond, func() {})
	env.Run()
	env.RunUntil(Time(time.Millisecond))
	if env.Now() != Time(10*time.Millisecond) {
		t.Fatalf("RunUntil rewound clock to %v", env.Now())
	}
}

func TestStepEmptyQueue(t *testing.T) {
	env := NewEnv()
	if env.Step() {
		t.Fatal("Step on empty queue reported true")
	}
	if env.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", env.Pending())
	}
}

func TestNextAt(t *testing.T) {
	env := NewEnv()
	if env.NextAt() != MaxTime {
		t.Fatal("NextAt on empty queue should be MaxTime")
	}
	ev := env.Schedule(7*time.Millisecond, func() {})
	if env.NextAt() != Time(7*time.Millisecond) {
		t.Fatalf("NextAt = %v, want 7ms", env.NextAt())
	}
	ev.Cancel()
	if env.NextAt() != MaxTime {
		t.Fatal("NextAt should skip canceled events")
	}
}

func TestFiredCount(t *testing.T) {
	env := NewEnv()
	for i := 0; i < 5; i++ {
		env.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	env.Run()
	if env.Fired() != 5 {
		t.Fatalf("Fired = %d, want 5", env.Fired())
	}
}

func TestTimeHelpers(t *testing.T) {
	tm := Time(1500 * time.Millisecond)
	if tm.Seconds() != 1.5 {
		t.Fatalf("Seconds = %v, want 1.5", tm.Seconds())
	}
	if tm.Milliseconds() != 1500 {
		t.Fatalf("Milliseconds = %v, want 1500", tm.Milliseconds())
	}
	if tm.Duration() != 1500*time.Millisecond {
		t.Fatalf("Duration = %v", tm.Duration())
	}
	if tm.String() != "1.5s" {
		t.Fatalf("String = %q", tm.String())
	}
}

// Property: events fire in non-decreasing time order regardless of the
// order in which they were scheduled.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		env := NewEnv()
		var fireTimes []Time
		for _, d := range delays {
			env.Schedule(time.Duration(d)*time.Microsecond, func() {
				fireTimes = append(fireTimes, env.Now())
			})
		}
		env.Run()
		for i := 1; i < len(fireTimes); i++ {
			if fireTimes[i] < fireTimes[i-1] {
				return false
			}
		}
		return len(fireTimes) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed generators diverged")
		}
	}
	c := NewRand(43)
	same := true
	a = NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical prefix")
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(9)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) over 1000 draws covered %d values", len(seen))
	}
}

func TestRandIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestRandExpMean(t *testing.T) {
	r := NewRand(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestRandNormMoments(t *testing.T) {
	r := NewRand(13)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 || math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal mean=%v var=%v, want ~0/~1", mean, variance)
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := NewRand(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env := NewEnv()
		for j := 0; j < 1000; j++ {
			env.Schedule(time.Duration(j)*time.Microsecond, func() {})
		}
		env.Run()
	}
}
