package sim

import "testing"

// TestMixTupleUniqueness covers the crash-seed regression: the old seed
// packed the attempt counter into the low 8 bits of a xor, so tuples like
// (replica 1, attempt 0) and (replica 0, attempt 256) collided — wide
// foreach fan-outs and deep retry chains shared crash decisions. Mix must
// keep every nearby tuple distinct.
func TestMixTupleUniqueness(t *testing.T) {
	seen := map[uint64][4]uint64{}
	for inv := uint64(0); inv < 4; inv++ {
		for node := uint64(0); node < 8; node++ {
			for replica := uint64(0); replica < 300; replica++ {
				for attempt := uint64(0); attempt < 4; attempt++ {
					h := Mix(inv, node, replica, attempt)
					if prev, dup := seen[h]; dup {
						t.Fatalf("Mix collision: %v and %v both hash to %#x",
							prev, [4]uint64{inv, node, replica, attempt}, h)
					}
					seen[h] = [4]uint64{inv, node, replica, attempt}
				}
			}
		}
	}
}

// TestMixOrderAndArity verifies that argument order and count matter: the
// mix is a sequential absorb, not a commutative xor.
func TestMixOrderAndArity(t *testing.T) {
	if Mix(1, 2) == Mix(2, 1) {
		t.Error("Mix is order-insensitive")
	}
	if Mix(1, 2) == Mix(1, 2, 0) {
		t.Error("Mix ignores trailing zero values")
	}
	if Mix() == Mix(0) {
		t.Error("Mix ignores arity")
	}
	a, b := Mix(7, 7, 7), Mix(7, 7, 7)
	if a != b {
		t.Error("Mix is not deterministic")
	}
}
