package sim

import "math"

// Rand is a small, fast, deterministic pseudo-random generator (splitmix64).
// We avoid math/rand so that the sequence is pinned by this repository, not
// by the Go release: experiment outputs must be bit-stable across toolchains.
type Rand struct{ state uint64 }

// NewRand returns a generator seeded with seed. Two generators with the same
// seed produce identical sequences.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Mix hashes a tuple of values into one well-distributed 64-bit seed by
// running each through a splitmix64 finalizer round. Unlike shift-and-xor
// packing, nearby tuples (adjacent attempts, wide fan-out replicas) land in
// unrelated regions of the seed space, so per-tuple random decisions do not
// correlate.
func Mix(vals ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range vals {
		h ^= v
		h += 0x9e3779b97f4a7c15
		h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
		h = (h ^ (h >> 27)) * 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics when n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponentially distributed value with mean 1,
// suitable for Poisson inter-arrival times.
func (r *Rand) ExpFloat64() float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}

// NormFloat64 returns a standard normal value (Box–Muller).
func (r *Rand) NormFloat64() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
