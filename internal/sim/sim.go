// Package sim provides a deterministic discrete-event simulation kernel.
//
// All FaaSFlow substrates (network fabric, container pool, storage, workflow
// engines) run on top of a single Env: a virtual clock plus an event queue.
// Events scheduled for the same instant fire in scheduling order, so a run
// with the same inputs always produces the same trace.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is an absolute instant of virtual time, in nanoseconds since the
// start of the simulation.
type Time int64

// Duration converts a virtual instant to the elapsed time.Duration since
// the simulation epoch.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports the instant as floating-point seconds since the epoch.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// Milliseconds reports the instant as floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(time.Millisecond) }

func (t Time) String() string { return time.Duration(t).String() }

// MaxTime is the largest representable virtual instant.
const MaxTime = Time(math.MaxInt64)

// Event is a scheduled callback. The zero value is meaningless; events are
// created with Env.Schedule or Env.At.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	index    int // heap index, -1 when not queued
	canceled bool
}

// At reports the virtual instant the event will fire.
func (ev *Event) At() Time { return ev.at }

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op.
func (ev *Event) Cancel() { ev.canceled = true }

// Canceled reports whether Cancel was called on the event.
func (ev *Event) Canceled() bool { return ev.canceled }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Env is a discrete-event simulation environment. It is not safe for
// concurrent use; the whole simulation is single-threaded by design so that
// every run is reproducible.
type Env struct {
	now     Time
	queue   eventQueue
	nextSeq uint64
	fired   uint64
	running bool
}

// NewEnv returns an environment with the clock at zero and an empty queue.
func NewEnv() *Env { return &Env{} }

// Now reports the current virtual time.
func (e *Env) Now() Time { return e.now }

// Pending reports how many events are queued (including canceled ones that
// have not yet been discarded).
func (e *Env) Pending() int { return len(e.queue) }

// Fired reports how many events have executed so far.
func (e *Env) Fired() uint64 { return e.fired }

// Schedule queues fn to run after delay. A negative delay is treated as
// zero. It returns the event so the caller may cancel it.
func (e *Env) Schedule(delay time.Duration, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+Time(delay), fn)
}

// At queues fn to run at absolute virtual instant t. Scheduling in the past
// panics: it would silently reorder causality.
func (e *Env) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: scheduling nil callback")
	}
	ev := &Event{at: t, seq: e.nextSeq, fn: fn, index: -1}
	e.nextSeq++
	heap.Push(&e.queue, ev)
	return ev
}

// Step fires the next event. It reports false when the queue is empty.
func (e *Env) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// Run fires events until the queue is empty.
func (e *Env) Run() {
	if e.running {
		panic("sim: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for e.Step() {
	}
}

// RunUntil fires events with timestamps <= deadline, then advances the clock
// to the deadline (if the simulation hasn't already passed it).
func (e *Env) RunUntil(deadline Time) {
	if e.running {
		panic("sim: RunUntil called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for {
		next, ok := e.peek()
		if !ok || next > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// peek returns the timestamp of the next live event.
func (e *Env) peek() (Time, bool) {
	for len(e.queue) > 0 {
		if e.queue[0].canceled {
			heap.Pop(&e.queue)
			continue
		}
		return e.queue[0].at, true
	}
	return 0, false
}

// NextAt reports the timestamp of the next pending event, or MaxTime when
// the queue is empty.
func (e *Env) NextAt() Time {
	if t, ok := e.peek(); ok {
		return t
	}
	return MaxTime
}
