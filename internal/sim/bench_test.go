// Package sim_test wraps the shared perf benchmark bodies so `go test
// -bench` in this package exercises the event kernel exactly as the BENCH
// snapshot Runner does (external test package: perf imports sim, so the
// wrapper must live outside package sim to avoid a cycle).
package sim_test

import (
	"testing"

	"repro/internal/perf"
)

func BenchmarkEventKernel(b *testing.B) { perf.BenchSimKernel(b) }

func BenchmarkEventCancel(b *testing.B) { perf.BenchSimCancel(b) }
