package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(New(Config{Workers: 3, FaaStore: true, Seed: 1}).Handler())
	t.Cleanup(srv.Close)
	return srv
}

func doJSON(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s %s: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

const gatewayWDL = `
name: etl
steps:
  - name: extract
    function: extract
    output: 1048576
  - name: load
    function: load
`

func deployETL(t *testing.T, srv *httptest.Server) {
	t.Helper()
	req := map[string]any{
		"wdl": gatewayWDL,
		"functions": map[string]any{
			"extract": map[string]any{"execSeconds": 0.1},
			"load":    map[string]any{"execSeconds": 0.05},
		},
	}
	var info workflowInfo
	if code := doJSON(t, http.MethodPost, srv.URL+"/workflows", req, &info); code != http.StatusCreated {
		t.Fatalf("deploy status = %d", code)
	}
	if info.Name != "etl" || info.Tasks != 2 || info.Groups == 0 {
		t.Fatalf("info = %+v", info)
	}
	if len(info.Placement) != 2 {
		t.Fatalf("placement = %v", info.Placement)
	}
}

func TestDeployAndInvoke(t *testing.T) {
	srv := newTestServer(t)
	deployETL(t, srv)

	var names []string
	if code := doJSON(t, http.MethodGet, srv.URL+"/workflows", nil, &names); code != 200 {
		t.Fatalf("list status = %d", code)
	}
	if len(names) != 1 || names[0] != "etl" {
		t.Fatalf("names = %v", names)
	}

	var stats invokeResponse
	code := doJSON(t, http.MethodPost, srv.URL+"/workflows/etl/invoke",
		map[string]any{"n": 10}, &stats)
	if code != 200 {
		t.Fatalf("invoke status = %d", code)
	}
	if stats.Count != 10 || stats.MeanMs < 150 {
		t.Fatalf("stats = %+v (critical exec is 150ms)", stats)
	}
	if stats.P99Ms < stats.P50Ms {
		t.Fatalf("percentiles inverted: %+v", stats)
	}
}

func TestDeployBenchmark(t *testing.T) {
	srv := newTestServer(t)
	var info workflowInfo
	code := doJSON(t, http.MethodPost, srv.URL+"/workflows",
		map[string]any{"benchmark": "Vid"}, &info)
	if code != http.StatusCreated {
		t.Fatalf("status = %d", code)
	}
	if info.Tasks != 10 {
		t.Fatalf("info = %+v", info)
	}
}

func TestGetWorkflowInfo(t *testing.T) {
	srv := newTestServer(t)
	deployETL(t, srv)
	var info workflowInfo
	if code := doJSON(t, http.MethodGet, srv.URL+"/workflows/etl", nil, &info); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if info.LocalizedPercent != 100 {
		t.Fatalf("chain should be fully local: %+v", info)
	}
}

func TestClusterStats(t *testing.T) {
	srv := newTestServer(t)
	deployETL(t, srv)
	doJSON(t, http.MethodPost, srv.URL+"/workflows/etl/invoke", map[string]any{"n": 3}, nil)
	var u map[string]any
	if code := doJSON(t, http.MethodGet, srv.URL+"/cluster", nil, &u); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if u["coldStarts"].(float64) == 0 {
		t.Fatalf("cluster stats empty: %v", u)
	}
	failures, ok := u["failures"].(map[string]any)
	if !ok {
		t.Fatalf("cluster stats missing failure counters: %v", u)
	}
	for _, key := range []string{"crashes", "retries", "timeouts", "reissues", "replacements", "failedInvocations"} {
		if _, ok := failures[key]; !ok {
			t.Errorf("failure counters missing %q: %v", key, failures)
		}
	}
}

func TestUtilizationAndBottleneckEndpoints(t *testing.T) {
	srv := newTestServer(t)
	deployETL(t, srv)
	doJSON(t, http.MethodPost, srv.URL+"/workflows/etl/invoke", map[string]any{"n": 3}, nil)

	var resources []map[string]any
	if code := doJSON(t, http.MethodGet, srv.URL+"/utilization", nil, &resources); code != 200 {
		t.Fatalf("utilization status = %d", code)
	}
	names := map[string]bool{}
	for _, r := range resources {
		names[r["name"].(string)] = true
	}
	for _, want := range []string{"node:w0:cpu", "node:w0:containers", "link:master:egress"} {
		if !names[want] {
			t.Fatalf("utilization missing %s; got %v", want, names)
		}
	}

	var sums []map[string]any
	if code := doJSON(t, http.MethodGet, srv.URL+"/workflows/etl/bottlenecks", nil, &sums); code != 200 {
		t.Fatalf("bottlenecks status = %d", code)
	}
	if len(sums) != 1 || sums[0]["workflow"] != "etl" {
		t.Fatalf("bottlenecks = %v", sums)
	}
}

func TestBenchmarksEndpoint(t *testing.T) {
	srv := newTestServer(t)
	var out []map[string]any
	if code := doJSON(t, http.MethodGet, srv.URL+"/benchmarks", nil, &out); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if len(out) != 8 {
		t.Fatalf("benchmarks = %d", len(out))
	}
}

func TestErrorPaths(t *testing.T) {
	srv := newTestServer(t)
	cases := []struct {
		method, path string
		body         any
		want         int
	}{
		{"POST", "/workflows", map[string]any{}, http.StatusBadRequest},
		{"POST", "/workflows", map[string]any{"benchmark": "nope"}, http.StatusNotFound},
		{"POST", "/workflows", map[string]any{"wdl": "not: [valid"}, http.StatusBadRequest},
		{"GET", "/workflows/ghost", nil, http.StatusNotFound},
		{"POST", "/workflows/ghost/invoke", map[string]any{"n": 1}, http.StatusNotFound},
		{"DELETE", "/workflows", nil, http.StatusMethodNotAllowed},
		{"POST", "/benchmarks", map[string]any{}, http.StatusMethodNotAllowed},
		{"POST", "/cluster", map[string]any{}, http.StatusMethodNotAllowed},
		{"POST", "/utilization", map[string]any{}, http.StatusMethodNotAllowed},
		{"GET", "/workflows/ghost/bottlenecks", nil, http.StatusNotFound},
	}
	for _, tc := range cases {
		var out map[string]any
		code := doJSON(t, tc.method, srv.URL+tc.path, tc.body, &out)
		if code != tc.want {
			t.Errorf("%s %s = %d, want %d (%v)", tc.method, tc.path, code, tc.want, out)
		}
		if _, hasErr := out["error"]; !hasErr {
			t.Errorf("%s %s: error body missing", tc.method, tc.path)
		}
	}
}

func TestDuplicateDeployRejected(t *testing.T) {
	srv := newTestServer(t)
	deployETL(t, srv)
	req := map[string]any{
		"wdl": gatewayWDL,
		"functions": map[string]any{
			"extract": map[string]any{"execSeconds": 0.1},
			"load":    map[string]any{"execSeconds": 0.05},
		},
	}
	var out map[string]any
	if code := doJSON(t, http.MethodPost, srv.URL+"/workflows", req, &out); code != http.StatusConflict {
		t.Fatalf("duplicate deploy status = %d", code)
	}
}

func TestInvokeWithArgsRoutesSwitch(t *testing.T) {
	srv := newTestServer(t)
	req := map[string]any{
		"wdl": `
name: router
steps:
  - name: probe
    function: probe
  - name: pick
    type: switch
    choices:
      - condition: "$q > 720"
        steps:
          - name: hd
            function: hd
      - steps:
          - name: sd
            function: sd
`,
		"functions": map[string]any{
			"probe": map[string]any{"execSeconds": 0.05},
			"hd":    map[string]any{"execSeconds": 2.0},
			"sd":    map[string]any{"execSeconds": 0.1},
		},
	}
	if code := doJSON(t, http.MethodPost, srv.URL+"/workflows", req, nil); code != http.StatusCreated {
		t.Fatalf("deploy status = %d", code)
	}
	invoke := func(q float64) invokeResponse {
		var stats invokeResponse
		code := doJSON(t, http.MethodPost, srv.URL+"/workflows/router/invoke",
			map[string]any{"n": 3, "args": map[string]any{"q": q}}, &stats)
		if code != 200 {
			t.Fatalf("invoke status = %d", code)
		}
		return stats
	}
	hd, sd := invoke(1080), invoke(480)
	if hd.MeanMs <= sd.MeanMs {
		t.Fatalf("hd mean %.0fms <= sd mean %.0fms; args not routed", hd.MeanMs, sd.MeanMs)
	}
}

func TestConcurrentRequestsSerialized(t *testing.T) {
	srv := newTestServer(t)
	deployETL(t, srv)
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			// Plain client calls here: test helpers may not t.Fatal from
			// goroutines.
			resp, err := http.Post(srv.URL+"/workflows/etl/invoke", "application/json",
				bytes.NewBufferString(`{"n":2}`))
			if err != nil {
				done <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != 200 {
				done <- fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv := newTestServer(t)
	deployETL(t, srv)
	var inv invokeResponse
	if code := doJSON(t, http.MethodPost, srv.URL+"/workflows/etl/invoke", map[string]any{"n": 2}, &inv); code != 200 {
		t.Fatalf("invoke status = %d", code)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	// Every line must parse as Prometheus 0.0.4 exposition: a # HELP/# TYPE
	// comment or `name{labels} value` / `name value`.
	series := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$`)
	var samples int
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !series.MatchString(line) {
			t.Fatalf("unparseable exposition line %q", line)
		}
		samples++
	}
	if samples == 0 {
		t.Fatal("no samples in exposition")
	}
	for _, want := range []string{
		`faasflow_invocations_total{workflow="etl",mode="WorkerSP",result="ok"}`,
		"# TYPE faasflow_invocation_seconds histogram",
		"faasflow_placements_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestWorkflowTraceEndpoint(t *testing.T) {
	srv := newTestServer(t)
	deployETL(t, srv)
	var inv invokeResponse
	if code := doJSON(t, http.MethodPost, srv.URL+"/workflows/etl/invoke", map[string]any{"n": 1}, &inv); code != 200 {
		t.Fatalf("invoke status = %d", code)
	}

	var events []map[string]any
	if code := doJSON(t, http.MethodGet, srv.URL+"/workflows/etl/trace", nil, &events); code != 200 {
		t.Fatalf("trace status = %d", code)
	}
	if len(events) == 0 {
		t.Fatal("trace has no events")
	}
	sawPhase := false
	for _, ev := range events {
		if ev["ph"] == "X" {
			sawPhase = true
		}
	}
	if !sawPhase {
		t.Fatal("trace has no phase spans")
	}

	// Unknown workflow → 404.
	var errBody map[string]string
	if code := doJSON(t, http.MethodGet, srv.URL+"/workflows/nope/trace", nil, &errBody); code != http.StatusNotFound {
		t.Fatalf("unknown workflow trace status = %d", code)
	}
	if errBody["error"] == "" {
		t.Fatal("404 body has no error message")
	}
}

// newThrottledServer builds a gateway whose admission bucket holds exactly
// one token and refills too slowly (on the virtual clock) to matter: the
// first invoke is admitted, every later one is turned away.
func newThrottledServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(New(Config{
		Workers:             3,
		FaaStore:            true,
		Seed:                1,
		AdmissionRatePerSec: 1e-9,
	}).Handler())
	t.Cleanup(srv.Close)
	return srv
}

func TestInvokeOverloadReturns429(t *testing.T) {
	srv := newThrottledServer(t)
	deployETL(t, srv)

	var stats invokeResponse
	if code := doJSON(t, http.MethodPost, srv.URL+"/workflows/etl/invoke",
		map[string]any{"n": 2}, &stats); code != 200 {
		t.Fatalf("first invoke status = %d, want 200", code)
	}

	resp, err := http.Post(srv.URL+"/workflows/etl/invoke", "application/json",
		bytes.NewBufferString(`{"n":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second invoke status = %d, want 429", resp.StatusCode)
	}
	retry := resp.Header.Get("Retry-After")
	if retry == "" {
		t.Fatal("429 without Retry-After header")
	}
	if secs, err := strconv.Atoi(retry); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want integral seconds >= 1", retry)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body["error"], "overloaded") {
		t.Fatalf("429 body = %v", body)
	}

	// The rejection is visible to scrapers: GET /metrics carries the
	// admission counter with decision="rejected".
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	text, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`faasflow_admission_total{workflow="etl",decision="admitted",reason="ok"} 1`,
		`faasflow_admission_total{workflow="etl",decision="rejected",reason="rate"} 1`,
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

func TestInvokeWithoutAdmissionNever429s(t *testing.T) {
	srv := newTestServer(t)
	deployETL(t, srv)
	for i := 0; i < 3; i++ {
		if code := doJSON(t, http.MethodPost, srv.URL+"/workflows/etl/invoke",
			map[string]any{"n": 1}, nil); code != 200 {
			t.Fatalf("invoke %d status = %d with admission disabled", i, code)
		}
	}
}

// TestJournalEndpoint deploys a benchmark durable, invokes it, and reads
// the committed step records back; a non-durable deploy must 404.
func TestJournalEndpoint(t *testing.T) {
	srv := newTestServer(t)
	if code := doJSON(t, http.MethodPost, srv.URL+"/workflows",
		map[string]any{"name": "dur", "benchmark": "IR", "durable": true}, nil); code != http.StatusCreated {
		t.Fatalf("durable deploy status = %d", code)
	}
	if code := doJSON(t, http.MethodPost, srv.URL+"/workflows",
		map[string]any{"name": "plain", "benchmark": "IR"}, nil); code != http.StatusCreated {
		t.Fatalf("plain deploy status = %d", code)
	}
	var empty struct {
		Entries []json.RawMessage `json:"entries"`
	}
	if code := doJSON(t, http.MethodGet, srv.URL+"/workflows/dur/journal", nil, &empty); code != http.StatusOK {
		t.Fatalf("journal before invoke status = %d", code)
	}
	if len(empty.Entries) != 0 {
		t.Fatalf("journal before invoke has %d entries", len(empty.Entries))
	}
	if code := doJSON(t, http.MethodPost, srv.URL+"/workflows/dur/invoke",
		map[string]any{"n": 2}, nil); code != http.StatusOK {
		t.Fatalf("invoke status = %d", code)
	}
	var got struct {
		Stats struct {
			Journal struct {
				Committed int64 `json:"Committed"`
			}
		} `json:"stats"`
		Entries []struct {
			Workflow string   `json:"workflow"`
			Inv      int64    `json:"inv"`
			Step     int      `json:"step"`
			Outputs  []string `json:"outputs"`
		} `json:"entries"`
	}
	if code := doJSON(t, http.MethodGet, srv.URL+"/workflows/dur/journal", nil, &got); code != http.StatusOK {
		t.Fatalf("journal status = %d", code)
	}
	if len(got.Entries) == 0 || got.Stats.Journal.Committed == 0 {
		t.Fatalf("journal empty after invoke: %d entries, %d committed",
			len(got.Entries), got.Stats.Journal.Committed)
	}
	if got.Entries[0].Workflow != "IR" {
		t.Fatalf("entry workflow = %q", got.Entries[0].Workflow)
	}
	if code := doJSON(t, http.MethodGet, srv.URL+"/workflows/plain/journal", nil, nil); code != http.StatusNotFound {
		t.Fatalf("non-durable journal status = %d, want 404", code)
	}
}

func TestExplainEndpoint(t *testing.T) {
	srv := newTestServer(t)
	var info workflowInfo
	if code := doJSON(t, http.MethodPost, srv.URL+"/workflows",
		map[string]any{"benchmark": "IR"}, &info); code != http.StatusCreated {
		t.Fatalf("deploy status = %d", code)
	}
	var ex struct {
		Ranked []struct {
			Dim    string `json:"dim"`
			GainNs int64  `json:"gainNs"`
		} `json:"ranked"`
		Tolerance float64 `json:"tolerance"`
	}
	if code := doJSON(t, http.MethodGet, srv.URL+"/workflows/IR/explain?n=5", nil, &ex); code != http.StatusOK {
		t.Fatalf("explain status = %d", code)
	}
	if len(ex.Ranked) != 5 {
		t.Fatalf("ranked %d dimensions, want 5", len(ex.Ranked))
	}
	for i := 1; i < len(ex.Ranked); i++ {
		if ex.Ranked[i].GainNs > ex.Ranked[i-1].GainNs {
			t.Fatalf("ranking not descending: %+v", ex.Ranked)
		}
	}
	if ex.Tolerance <= 0 {
		t.Fatalf("tolerance = %v", ex.Tolerance)
	}
	if code := doJSON(t, http.MethodGet, srv.URL+"/workflows/IR/explain?n=0", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("n=0 status = %d, want 400", code)
	}
	if code := doJSON(t, http.MethodGet, srv.URL+"/workflows/IR/explain?n=10000", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("oversized n status = %d, want 400", code)
	}
	if code := doJSON(t, http.MethodGet, srv.URL+"/workflows/ghost/explain", nil, nil); code != http.StatusNotFound {
		t.Fatalf("ghost status = %d, want 404", code)
	}
}
