// Package gateway exposes the FaaSFlow cluster as an HTTP service — the
// role the artifact's proxy plays: users upload workflow definitions, send
// invocations, and read placement and latency statistics over REST.
//
//	POST /workflows            {"name", "wdl", "functions": {...}}  deploy
//	GET  /workflows            list deployed workflows
//	GET  /workflows/{name}     placement, groups, locality
//	POST /workflows/{name}/invoke  {"n", "ratePerMinute", "args"}   run
//	                           (429 + Retry-After when admission rejects;
//	                           503 + Retry-After mid federation handoff;
//	                           the "Tenant" header attributes the session
//	                           to a tenant for weighted-fair admission and
//	                           queueing — see docs/TENANCY.md)
//	GET  /workflows/{name}/journal committed step records (durable deploys)
//	GET  /workflows/{name}/federation  lease/epoch/handoff counters
//	POST /workflows/{name}/federation  {"op": kill|restart|stall|advance}
//	                           chaos and clock control (federated deploys)
//	GET  /workflows/{name}/fastpath fast-path options and counters
//	                           (fast-path deploys)
//	GET  /workflows/{name}/trace   Chrome trace of observed invocations
//	GET  /workflows/{name}/bottlenecks  critical path joined with saturation
//	GET  /workflows/{name}/explain[?n=N]  causal what-if profile, ranked
//	GET  /benchmarks           the built-in paper workloads
//	GET  /cluster              cumulative utilization counters
//	GET  /tenants              per-tenant admission + queue breakdown
//	GET  /utilization          per-resource occupancy timeline summaries
//	GET  /metrics              Prometheus text exposition
//
// The simulation is single-threaded, so the handler serializes requests;
// for the simulated substrate this is a modeling property, not a
// bottleneck (a full evaluation sweep takes seconds).
package gateway

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/faasflow"
)

// Server is the HTTP control plane over one simulated cluster.
type Server struct {
	mu      sync.Mutex
	cluster *faasflow.Cluster
	mode    faasflow.Mode
	apps    map[string]*faasflow.App
	wfs     map[string]*faasflow.Workflow
	obs     *faasflow.Observer
}

// Config selects the cluster the server manages.
type Config struct {
	Workers            int
	StorageBandwidthMB float64
	FaaStore           bool
	MasterSP           bool // run the HyperFlow-serverless baseline pattern
	Seed               uint64
	// Admission installs front-door overload control: invoke requests past
	// the rate limit or concurrency cap get HTTP 429 with a Retry-After
	// hint instead of queueing. Zero limits admit everything.
	AdmissionRatePerSec    float64
	AdmissionBurst         float64
	AdmissionMaxConcurrent int
	// AdmissionTenants layers per-tenant weighted buckets and caps under
	// the global limits and installs the weights for weighted-fair Acquire
	// queueing. Requests name their tenant with the "Tenant" header on the
	// invoke endpoint; GET /tenants serves the per-tenant breakdown.
	AdmissionTenants map[string]faasflow.TenantConfig
}

func (c Config) admissionEnabled() bool {
	return c.AdmissionRatePerSec > 0 || c.AdmissionMaxConcurrent > 0 || len(c.AdmissionTenants) > 0
}

// New builds a server with a fresh cluster.
func New(cfg Config) *Server {
	var opts []faasflow.Option
	if cfg.Workers > 0 {
		opts = append(opts, faasflow.WithWorkers(cfg.Workers))
	}
	if cfg.StorageBandwidthMB > 0 {
		opts = append(opts, faasflow.WithStorageBandwidthMBps(cfg.StorageBandwidthMB))
	}
	opts = append(opts, faasflow.WithFaaStore(cfg.FaaStore), faasflow.WithSeed(cfg.Seed))
	mode := faasflow.WorkerSP
	if cfg.MasterSP {
		mode = faasflow.MasterSP
	}
	cluster := faasflow.NewCluster(opts...)
	if cfg.admissionEnabled() {
		// Config fields are non-negative limits; SetAdmission only errors on
		// negatives, so this cannot fail here — but keep the check honest.
		if err := cluster.SetAdmission(faasflow.AdmissionConfig{
			RatePerSec:    cfg.AdmissionRatePerSec,
			Burst:         cfg.AdmissionBurst,
			MaxConcurrent: cfg.AdmissionMaxConcurrent,
			Tenants:       cfg.AdmissionTenants,
		}); err != nil {
			panic(fmt.Sprintf("gateway: invalid admission config: %v", err))
		}
	}
	observer := faasflow.NewObserver()
	cluster.AttachObserver(observer)
	return &Server{
		cluster: cluster,
		mode:    mode,
		apps:    map[string]*faasflow.App{},
		wfs:     map[string]*faasflow.Workflow{},
		obs:     observer,
	}
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/workflows", s.handleWorkflows)
	mux.HandleFunc("/workflows/", s.handleWorkflow)
	mux.HandleFunc("/benchmarks", s.handleBenchmarks)
	mux.HandleFunc("/cluster", s.handleCluster)
	mux.HandleFunc("/tenants", s.handleTenants)
	mux.HandleFunc("/utilization", s.handleUtilization)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func fail(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	if he, ok := err.(*httpError); ok {
		status = he.status
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// deployRequest is the POST /workflows body.
type deployRequest struct {
	Name string `json:"name"`
	// WDL is the workflow definition (YAML). Alternatively Benchmark names
	// a built-in paper workload.
	WDL       string `json:"wdl,omitempty"`
	Benchmark string `json:"benchmark,omitempty"`
	// Functions maps function name -> cost model (required with WDL).
	Functions map[string]struct {
		ExecSeconds float64 `json:"execSeconds"`
		MemPeak     int64   `json:"memPeak,omitempty"`
	} `json:"functions,omitempty"`
	// Durable deploys with a workflow journal (and recovery enabled), so
	// GET /workflows/{name}/journal serves the committed step records.
	Durable bool `json:"durable,omitempty"`
	// ReplicationFactor, with Durable, writes FaaStore outputs to this many
	// worker shards (cluster-wide store property).
	ReplicationFactor int `json:"replicationFactor,omitempty"`
	// FastPath enables the data-plane fast path for this deployment; GET
	// /workflows/{name}/fastpath serves its counters.
	FastPath struct {
		DirectPassing bool `json:"directPassing,omitempty"`
		Prewarm       bool `json:"prewarm,omitempty"`
		Memoize       bool `json:"memoize,omitempty"`
	} `json:"fastPath,omitempty"`
	// Federated deploys the workflow behind a sharded engine federation
	// (lease-based failover with journal handoff); every member is durable.
	// Takes precedence over Durable.
	Federated bool `json:"federated,omitempty"`
	// Federation tunes the federated deployment; zero values take the
	// library defaults (3 members, 16 shards, 2s lease TTL, 250ms handoff).
	Federation struct {
		Members        int    `json:"members,omitempty"`
		Shards         int    `json:"shards,omitempty"`
		LeaseTTLMs     int    `json:"leaseTTLMs,omitempty"`
		RenewEveryMs   int    `json:"renewEveryMs,omitempty"`
		CheckEveryMs   int    `json:"checkEveryMs,omitempty"`
		HandoffDelayMs int    `json:"handoffDelayMs,omitempty"`
		Seed           uint64 `json:"seed,omitempty"`
	} `json:"federation,omitempty"`
}

// workflowInfo is the GET /workflows/{name} response.
type workflowInfo struct {
	Name             string            `json:"name"`
	Tasks            int               `json:"tasks"`
	TotalBytes       int64             `json:"totalBytes"`
	Groups           int               `json:"groups"`
	LocalizedPercent float64           `json:"localizedPercent"`
	Placement        map[string]string `json:"placement"`
}

func (s *Server) handleWorkflows(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch r.Method {
	case http.MethodGet:
		names := make([]string, 0, len(s.apps))
		for name := range s.apps {
			names = append(names, name)
		}
		sort.Strings(names)
		writeJSON(w, http.StatusOK, names)
	case http.MethodPost:
		var req deployRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			fail(w, &httpError{http.StatusBadRequest, "invalid JSON: " + err.Error()})
			return
		}
		info, err := s.deploy(req)
		if err != nil {
			fail(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, info)
	default:
		fail(w, &httpError{http.StatusMethodNotAllowed, "use GET or POST"})
	}
}

func (s *Server) deploy(req deployRequest) (*workflowInfo, error) {
	var wf *faasflow.Workflow
	switch {
	case req.Benchmark != "":
		wf = faasflow.Benchmark(req.Benchmark)
		if wf == nil {
			return nil, &httpError{http.StatusNotFound, fmt.Sprintf("unknown benchmark %q", req.Benchmark)}
		}
	case req.WDL != "":
		fns := map[string]faasflow.FunctionSpec{}
		for name, f := range req.Functions {
			fns[name] = faasflow.FunctionSpec{ExecSeconds: f.ExecSeconds, MemPeak: f.MemPeak}
		}
		var err error
		wf, err = faasflow.WorkflowFromWDL(req.WDL, fns)
		if err != nil {
			return nil, &httpError{http.StatusBadRequest, err.Error()}
		}
	default:
		return nil, &httpError{http.StatusBadRequest, "provide wdl or benchmark"}
	}
	name := req.Name
	if name == "" {
		name = wf.Name()
	}
	if _, dup := s.apps[name]; dup {
		return nil, &httpError{http.StatusConflict, fmt.Sprintf("workflow %q already deployed", name)}
	}
	fp := faasflow.FastPath{
		DirectPassing: req.FastPath.DirectPassing,
		Prewarm:       req.FastPath.Prewarm,
		Memoize:       req.FastPath.Memoize,
	}
	var app *faasflow.App
	var err error
	switch {
	case req.Federated:
		fc := req.Federation
		app, err = s.cluster.DeployFederated(wf, s.mode, faasflow.FederationOptions{
			Members:      fc.Members,
			Shards:       fc.Shards,
			LeaseTTL:     time.Duration(fc.LeaseTTLMs) * time.Millisecond,
			RenewEvery:   time.Duration(fc.RenewEveryMs) * time.Millisecond,
			CheckEvery:   time.Duration(fc.CheckEveryMs) * time.Millisecond,
			HandoffDelay: time.Duration(fc.HandoffDelayMs) * time.Millisecond,
			Seed:         fc.Seed,
			Durability: faasflow.Durability{
				ReplicationFactor: req.ReplicationFactor,
				FastPath:          fp,
			},
		})
	case req.Durable:
		app, err = s.cluster.DeployDurable(wf, s.mode, faasflow.Durability{
			ReplicationFactor: req.ReplicationFactor,
			FastPath:          fp,
		})
	case fp.Enabled():
		app, err = s.cluster.DeployFast(wf, s.mode, fp)
	default:
		app, err = s.cluster.Deploy(wf, s.mode)
	}
	if err != nil {
		return nil, &httpError{http.StatusUnprocessableEntity, err.Error()}
	}
	s.apps[name] = app
	s.wfs[name] = wf
	return s.info(name), nil
}

func (s *Server) info(name string) *workflowInfo {
	app, wf := s.apps[name], s.wfs[name]
	return &workflowInfo{
		Name:             name,
		Tasks:            wf.Tasks(),
		TotalBytes:       wf.TotalBytes(),
		Groups:           app.Groups(),
		LocalizedPercent: app.LocalizedFraction() * 100,
		Placement:        app.Placement(),
	}
}

// invokeRequest is the POST /workflows/{name}/invoke body.
type invokeRequest struct {
	N             int            `json:"n"`
	RatePerMinute float64        `json:"ratePerMinute,omitempty"` // 0 = closed loop
	Args          map[string]any `json:"args,omitempty"`
}

// invokeResponse reports run statistics.
type invokeResponse struct {
	Count       int     `json:"count"`
	MeanMs      float64 `json:"meanMs"`
	P50Ms       float64 `json:"p50Ms"`
	P99Ms       float64 `json:"p99Ms"`
	MaxMs       float64 `json:"maxMs"`
	TimeoutRate float64 `json:"timeoutRate"`
}

func (s *Server) handleWorkflow(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rest := strings.TrimPrefix(r.URL.Path, "/workflows/")
	name, action, _ := strings.Cut(rest, "/")
	app, ok := s.apps[name]
	if !ok {
		fail(w, &httpError{http.StatusNotFound, fmt.Sprintf("workflow %q not deployed", name)})
		return
	}
	switch {
	case action == "" && r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, s.info(name))
	case action == "invoke" && r.Method == http.MethodPost:
		var req invokeRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			fail(w, &httpError{http.StatusBadRequest, "invalid JSON: " + err.Error()})
			return
		}
		if req.N <= 0 {
			req.N = 1
		}
		if req.N > 100000 {
			fail(w, &httpError{http.StatusBadRequest, "n too large"})
			return
		}
		// Admission gates the HTTP request as one workflow session: rejected
		// requests get 429 + Retry-After without touching the simulation.
		// The Tenant header attributes the session to a tenant, gating it on
		// the tenant's weighted slice of the limits as well.
		tenant := r.Header.Get("Tenant")
		var release func()
		var err error
		if tenant != "" {
			release, err = s.cluster.AdmitTenant(name, tenant)
		} else {
			release, err = s.cluster.Admit(name)
		}
		if err != nil {
			var oe *faasflow.OverloadError
			if errors.As(err, &oe) {
				w.Header().Set("Retry-After", retryAfterSeconds(oe.RetryAfter))
				fail(w, &httpError{http.StatusTooManyRequests, oe.Error()})
				return
			}
			fail(w, err)
			return
		}
		defer release()
		// Federation handoff gates the request the same way admission does:
		// a shard claimed from an expired member rejects invocations until
		// its journal replay window closes, so requests arriving mid-handoff
		// get 503 + Retry-After instead of racing the replay.
		if wait, pending := app.HandoffPending(); pending {
			w.Header().Set("Retry-After", retryAfterSeconds(wait))
			fail(w, &httpError{http.StatusServiceUnavailable,
				fmt.Sprintf("federation handoff in progress, retry after %v", wait)})
			return
		}
		var stats faasflow.Stats
		switch {
		case app.Federated():
			if req.RatePerMinute > 0 || req.Args != nil {
				fail(w, &httpError{http.StatusBadRequest,
					"federated invoke supports closed-loop runs only"})
				return
			}
			st, err := app.RunFederated(req.N)
			if err != nil {
				fail(w, &httpError{http.StatusInternalServerError, err.Error()})
				return
			}
			stats = st
		case req.RatePerMinute > 0:
			// Open-loop runs keep tenant attribution at the admission layer
			// only; the per-invocation label rides on closed-loop runs.
			stats = app.RunOpenLoop(req.RatePerMinute, req.N)
		case tenant != "":
			stats = app.RunOpts(faasflow.InvokeOptions{Args: req.Args, Tenant: tenant}, req.N)
		case req.Args != nil:
			stats = app.RunWithArgs(req.Args, req.N)
		default:
			stats = app.Run(req.N)
		}
		writeJSON(w, http.StatusOK, invokeResponse{
			Count:       stats.Count,
			MeanMs:      ms(stats.Mean),
			P50Ms:       ms(stats.P50),
			P99Ms:       ms(stats.P99),
			MaxMs:       ms(stats.Max),
			TimeoutRate: stats.Timeouts,
		})
	case action == "journal" && r.Method == http.MethodGet:
		if !app.Durable() {
			fail(w, &httpError{http.StatusNotFound,
				fmt.Sprintf("workflow %q was not deployed durable", name)})
			return
		}
		entries := app.JournalEntries()
		if entries == nil {
			entries = []faasflow.JournalEntry{}
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"stats":   app.DurableStats(),
			"entries": entries,
		})
	case action == "federation" && r.Method == http.MethodGet:
		if !app.Federated() {
			fail(w, &httpError{http.StatusNotFound,
				fmt.Sprintf("workflow %q was not deployed federated", name)})
			return
		}
		exhausted := app.ExhaustionFailures()
		if exhausted == nil {
			exhausted = []faasflow.ExhaustionRecord{}
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"members":   app.FederationMembers(),
			"stats":     app.FederationStats(),
			"exhausted": exhausted,
		})
	case action == "federation" && r.Method == http.MethodPost:
		if !app.Federated() {
			fail(w, &httpError{http.StatusNotFound,
				fmt.Sprintf("workflow %q was not deployed federated", name)})
			return
		}
		var req fedActionRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			fail(w, &httpError{http.StatusBadRequest, "invalid JSON: " + err.Error()})
			return
		}
		if err := s.fedAction(app, req); err != nil {
			fail(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"stats": app.FederationStats()})
	case action == "fastpath" && r.Method == http.MethodGet:
		if !app.FastPath().Enabled() {
			fail(w, &httpError{http.StatusNotFound,
				fmt.Sprintf("workflow %q was not deployed with the fast path", name)})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"options": app.FastPath(),
			"stats":   app.FastPathStats(),
			"direct":  s.cluster.DirectPassingStats(),
		})
	case action == "trace" && r.Method == http.MethodGet:
		data, err := s.obs.WorkflowTrace(name)
		if err != nil {
			fail(w, &httpError{http.StatusNotFound, err.Error()})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(data)
	case action == "explain" && r.Method == http.MethodGet:
		// Causal what-if profile: re-simulates the workflow's scenario with
		// each cost dimension virtually scaled and ranks them by measured
		// gain. Counterfactuals run on fresh testbed replicas, so the live
		// deployment is untouched; n is capped because each of the ~20
		// counterfactual runs executes n invocations inline.
		n := 20
		if v := r.URL.Query().Get("n"); v != "" {
			parsed, err := strconv.Atoi(v)
			if err != nil || parsed <= 0 {
				fail(w, &httpError{http.StatusBadRequest, "invalid n"})
				return
			}
			n = parsed
		}
		if n > 200 {
			fail(w, &httpError{http.StatusBadRequest, "n too large (max 200 per counterfactual run)"})
			return
		}
		ex, err := app.Explain(n)
		if err != nil {
			fail(w, &httpError{http.StatusInternalServerError, err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, ex)
	case action == "bottlenecks" && r.Method == http.MethodGet:
		all, err := s.obs.Bottlenecks()
		if err != nil {
			fail(w, &httpError{http.StatusInternalServerError, err.Error()})
			return
		}
		var out []faasflow.BottleneckSummary
		for _, b := range all {
			if b.Workflow == name {
				out = append(out, b)
			}
		}
		if len(out) == 0 {
			fail(w, &httpError{http.StatusNotFound,
				fmt.Sprintf("no completed invocations observed for workflow %q", name)})
			return
		}
		writeJSON(w, http.StatusOK, out)
	default:
		fail(w, &httpError{http.StatusMethodNotAllowed, "unknown action"})
	}
}

// fedActionRequest is the POST /workflows/{name}/federation body: a chaos
// or clock-control op against a federated deployment.
type fedActionRequest struct {
	// Op is one of kill, restart, stall (member required; stall also needs
	// durationMs) or advance (advanceMs required) — advance runs the
	// simulation clock forward so lease expiries and handoffs progress
	// between HTTP requests.
	Op         string `json:"op"`
	Member     string `json:"member,omitempty"`
	DurationMs int    `json:"durationMs,omitempty"`
	AdvanceMs  int    `json:"advanceMs,omitempty"`
}

func (s *Server) fedAction(app *faasflow.App, req fedActionRequest) error {
	var err error
	switch req.Op {
	case "kill":
		err = app.KillFederationMember(req.Member)
	case "restart":
		err = app.RestartFederationMember(req.Member)
	case "stall":
		if req.DurationMs <= 0 {
			return &httpError{http.StatusBadRequest, "stall needs durationMs > 0"}
		}
		err = app.StallFederationMember(req.Member, time.Duration(req.DurationMs)*time.Millisecond)
	case "advance":
		if req.AdvanceMs <= 0 {
			return &httpError{http.StatusBadRequest, "advance needs advanceMs > 0"}
		}
		s.cluster.Advance(time.Duration(req.AdvanceMs) * time.Millisecond)
	default:
		return &httpError{http.StatusBadRequest,
			fmt.Sprintf("unknown op %q (use kill, restart, stall, or advance)", req.Op)}
	}
	if err != nil {
		return &httpError{http.StatusBadRequest, err.Error()}
	}
	return nil
}

// handleMetrics serves the Prometheus text exposition of everything the
// attached observer has collected.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		fail(w, &httpError{http.StatusMethodNotAllowed, "use GET"})
		return
	}
	s.mu.Lock()
	text := s.obs.PrometheusText()
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(text))
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		fail(w, &httpError{http.StatusMethodNotAllowed, "use GET"})
		return
	}
	type bench struct {
		Name  string `json:"name"`
		Tasks int    `json:"tasks"`
	}
	var out []bench
	for _, wf := range faasflow.Benchmarks() {
		out = append(out, bench{Name: wf.Name(), Tasks: wf.Tasks()})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		fail(w, &httpError{http.StatusMethodNotAllowed, "use GET"})
		return
	}
	s.mu.Lock()
	u := s.cluster.Utilization()
	// Failure counters aggregate across every deployed app: together with
	// the fault metrics on /metrics they are the gateway's view of how much
	// work the recovery layer re-did.
	var fs faasflow.FailureStats
	exhausted := []faasflow.ExhaustionRecord{}
	names := make([]string, 0, len(s.apps))
	for name := range s.apps {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st := s.apps[name].FailureStats()
		fs.Crashes += st.Crashes
		fs.Retries += st.Retries
		fs.Timeouts += st.Timeouts
		fs.Reissues += st.Reissues
		fs.Replacements += st.Replacements
		fs.FailedInvocations += st.FailedInvocations
		fs.ReissuesExhausted += st.ReissuesExhausted
		exhausted = append(exhausted, st.Exhausted...)
	}
	tenantQueues := s.cluster.TenantQueueStats()
	if tenantQueues == nil {
		tenantQueues = []faasflow.TenantQueueStats{}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"containers":     u.Containers,
		"coldStarts":     u.ColdStarts,
		"warmReuses":     u.WarmReuses,
		"cpuBusyMs":      ms(u.CPUBusy),
		"networkBytes":   u.NetworkBytes,
		"storeLocalHits": u.StoreLocalHits,
		"storeRemoteOps": u.StoreRemoteOps,
		// tenants carries the per-tenant Acquire-queue breakdown: how each
		// tenant's requests fared at every node's weighted-fair queue.
		"tenants": tenantQueues,
		"failures": map[string]int64{
			"crashes":           fs.Crashes,
			"retries":           fs.Retries,
			"timeouts":          fs.Timeouts,
			"reissues":          fs.Reissues,
			"replacements":      fs.Replacements,
			"failedInvocations": fs.FailedInvocations,
			"reissuesExhausted": fs.ReissuesExhausted,
		},
		// exhaustedSteps carries the typed record for every step that burned
		// its whole re-issue budget: workflow, invocation, step, attempts.
		"exhaustedSteps": exhausted,
	})
}

// handleTenants serves the per-tenant view: admission counters (weights,
// effective limits, decisions, live occupancy) joined with each tenant's
// Acquire-queue counters across the worker nodes.
func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		fail(w, &httpError{http.StatusMethodNotAllowed, "use GET"})
		return
	}
	s.mu.Lock()
	admission := s.cluster.TenantAdmissionStats()
	queues := s.cluster.TenantQueueStats()
	s.mu.Unlock()
	if admission == nil {
		admission = []faasflow.TenantAdmissionStats{}
	}
	if queues == nil {
		queues = []faasflow.TenantQueueStats{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"admission": admission,
		"queues":    queues,
	})
}

// handleUtilization serves the observer's per-resource occupancy timeline
// summaries (distinct from /cluster's cumulative counters).
func (s *Server) handleUtilization(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		fail(w, &httpError{http.StatusMethodNotAllowed, "use GET"})
		return
	}
	s.mu.Lock()
	u := s.obs.Utilization()
	s.mu.Unlock()
	if u == nil {
		u = []faasflow.ResourceUtilization{}
	}
	writeJSON(w, http.StatusOK, u)
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// retryAfterSeconds renders a Retry-After header value: whole seconds,
// rounded up, at least 1 (RFC 7231 allows only integral seconds).
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}
