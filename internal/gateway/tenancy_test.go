package gateway

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/faasflow"
)

// newTenantServer builds a gateway with per-tenant admission: gold gets 3x
// bronze's weight, and bronze's bucket holds one token that effectively
// never refills (workflow runs advance sim time, so a refilling rate would
// re-arm between requests).
func newTenantServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	g := New(Config{
		Workers:                3,
		FaaStore:               true,
		Seed:                   1,
		AdmissionRatePerSec:    1000,
		AdmissionMaxConcurrent: 8,
		AdmissionTenants: map[string]faasflow.TenantConfig{
			"gold":   {Weight: 3},
			"bronze": {Weight: 1, RatePerSec: 1e-9, Burst: 1},
		},
	})
	srv := httptest.NewServer(g.Handler())
	t.Cleanup(srv.Close)
	return g, srv
}

// invokeAs posts one invoke with a Tenant header and returns the response.
func invokeAs(t *testing.T, srv *httptest.Server, tenant string, n int) *http.Response {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"n": n})
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/workflows/etl/invoke",
		bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Tenant", tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestTenantHeaderAttributesInvoke(t *testing.T) {
	g, srv := newTenantServer(t)
	deployETL(t, srv)

	resp := invokeAs(t, srv, "gold", 2)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gold invoke status = %d", resp.StatusCode)
	}
	// bronze: first request fits the burst-1 bucket, the second 429s with
	// the tenant named in the body.
	resp = invokeAs(t, srv, "bronze", 1)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first bronze invoke status = %d", resp.StatusCode)
	}
	resp = invokeAs(t, srv, "bronze", 1)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second bronze invoke status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("tenant 429 without Retry-After")
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body["error"], "bronze") {
		t.Fatalf("429 body does not name the tenant: %v", body)
	}
	// The pairing invariant after mixed outcomes: nothing in flight.
	if live := g.cluster.AdmissionLive(); live != 0 {
		t.Fatalf("AdmissionLive = %d after requests finished, want 0", live)
	}
}

func TestTenantsEndpoint(t *testing.T) {
	_, srv := newTenantServer(t)
	deployETL(t, srv)
	invokeAs(t, srv, "gold", 2).Body.Close()
	invokeAs(t, srv, "bronze", 1).Body.Close()
	invokeAs(t, srv, "bronze", 1).Body.Close() // rejected

	var view struct {
		Admission []faasflow.TenantAdmissionStats `json:"admission"`
		Queues    []faasflow.TenantQueueStats     `json:"queues"`
	}
	if code := doJSON(t, http.MethodGet, srv.URL+"/tenants", nil, &view); code != http.StatusOK {
		t.Fatalf("/tenants status = %d", code)
	}
	byTenant := map[string]faasflow.TenantAdmissionStats{}
	for _, s := range view.Admission {
		byTenant[s.Tenant] = s
	}
	gold, bronze := byTenant["gold"], byTenant["bronze"]
	if gold.Weight != 3 || gold.Admitted != 1 || gold.Released != 1 {
		t.Fatalf("gold admission = %+v", gold)
	}
	if bronze.Admitted != 1 || bronze.RejectedRate != 1 {
		t.Fatalf("bronze admission = %+v", bronze)
	}
	// The tenanted closed-loop runs left per-tenant queue counters.
	grants := int64(0)
	for _, q := range view.Queues {
		if q.Tenant == "gold" {
			grants += q.Grants
		}
	}
	if grants == 0 {
		t.Fatalf("no gold queue grants in /tenants view: %+v", view.Queues)
	}
	// The /cluster summary carries the same per-tenant queue breakdown.
	var cl map[string]json.RawMessage
	if code := doJSON(t, http.MethodGet, srv.URL+"/cluster", nil, &cl); code != http.StatusOK {
		t.Fatalf("/cluster status = %d", code)
	}
	if _, ok := cl["tenants"]; !ok {
		t.Fatal("/cluster response missing tenants breakdown")
	}
	// Tenant metrics reach the exposition endpoint.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`faasflow_tenant_admission_total{tenant="gold",decision="admitted",reason="ok"} 1`,
		`faasflow_tenant_admission_total{tenant="bronze",decision="rejected",reason="tenant-rate"} 1`,
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

// TestAdmissionReleasedOnErrorPaths pins the leak regression on the
// gateway's post-admission early returns: a request that is admitted but
// then fails validation must still return its slot.
func TestAdmissionReleasedOnErrorPaths(t *testing.T) {
	g := New(Config{Workers: 3, FaaStore: true, Seed: 1, AdmissionMaxConcurrent: 2})
	srv := httptest.NewServer(g.Handler())
	t.Cleanup(srv.Close)
	deployETL(t, srv)

	// n too large fails before admission; invalid body too — neither leaks.
	if code := doJSON(t, http.MethodPost, srv.URL+"/workflows/etl/invoke",
		map[string]any{"n": 200000}, nil); code != http.StatusBadRequest {
		t.Fatalf("oversized n status = %d", code)
	}
	// A federated-only option on a non-federated deploy… is accepted as a
	// plain run, so use repeated successful invokes to exercise the
	// admitted path end to end instead.
	for i := 0; i < 3; i++ {
		if code := doJSON(t, http.MethodPost, srv.URL+"/workflows/etl/invoke",
			map[string]any{"n": 1}, nil); code != http.StatusOK {
			t.Fatalf("invoke %d status = %d", i, code)
		}
	}
	if live := g.cluster.AdmissionLive(); live != 0 {
		t.Fatalf("AdmissionLive = %d, want 0", live)
	}
	if st := g.cluster.AdmissionStats(); st.Admitted != 3 {
		t.Fatalf("admitted = %d, want 3 (bad requests must not consume slots)", st.Admitted)
	}
}
