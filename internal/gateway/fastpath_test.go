package gateway

import (
	"net/http"
	"testing"
)

func TestDeployFastPathAndStats(t *testing.T) {
	srv := newTestServer(t)
	req := map[string]any{
		"benchmark": "Vid",
		"fastPath": map[string]any{
			"directPassing": true,
			"prewarm":       true,
			"memoize":       true,
		},
	}
	var info workflowInfo
	if code := doJSON(t, http.MethodPost, srv.URL+"/workflows", req, &info); code != http.StatusCreated {
		t.Fatalf("deploy status = %d", code)
	}
	var stats invokeResponse
	if code := doJSON(t, http.MethodPost, srv.URL+"/workflows/Vid/invoke",
		map[string]any{"n": 5}, &stats); code != 200 {
		t.Fatalf("invoke status = %d", code)
	}
	var fp struct {
		Options struct {
			DirectPassing bool
			Memoize       bool
		} `json:"options"`
		Stats struct {
			DirectPushes int64
			MemoHits     int64
		} `json:"stats"`
		Direct struct {
			Pushes int64
		} `json:"direct"`
	}
	if code := doJSON(t, http.MethodGet, srv.URL+"/workflows/Vid/fastpath", nil, &fp); code != 200 {
		t.Fatalf("fastpath status = %d", code)
	}
	if !fp.Options.DirectPassing || !fp.Options.Memoize {
		t.Fatalf("options did not round-trip: %+v", fp.Options)
	}
	if fp.Stats.DirectPushes == 0 || fp.Direct.Pushes == 0 {
		t.Fatalf("no direct pushes recorded: %+v", fp)
	}
	if fp.Stats.MemoHits == 0 {
		t.Fatalf("no memo hits across repeated invocations: %+v", fp.Stats)
	}
}

func TestFastPathEndpointRequiresFastDeploy(t *testing.T) {
	srv := newTestServer(t)
	deployETL(t, srv)
	code := doJSON(t, http.MethodGet, srv.URL+"/workflows/etl/fastpath", nil, nil)
	if code != http.StatusNotFound {
		t.Fatalf("fastpath on plain deploy = %d, want 404", code)
	}
}
