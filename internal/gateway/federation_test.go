package gateway

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// deployFederatedETL deploys the test workflow behind a federation with
// deliberately slow handoff (5 s window) so tests can land requests inside
// it via the advance op.
func deployFederatedETL(t *testing.T, srv *httptest.Server) {
	t.Helper()
	req := map[string]any{
		"wdl": gatewayWDL,
		"functions": map[string]any{
			"extract": map[string]any{"execSeconds": 0.1},
			"load":    map[string]any{"execSeconds": 0.05},
		},
		"federated": true,
		"federation": map[string]any{
			"members":        2,
			"shards":         8,
			"leaseTTLMs":     1000,
			"renewEveryMs":   250,
			"checkEveryMs":   250,
			"handoffDelayMs": 5000,
			"seed":           3,
		},
	}
	var info workflowInfo
	if code := doJSON(t, http.MethodPost, srv.URL+"/workflows", req, &info); code != http.StatusCreated {
		t.Fatalf("federated deploy status = %d", code)
	}
}

// fedState is the GET /workflows/{name}/federation response shape the
// tests care about.
type fedState struct {
	Members []string `json:"members"`
	Stats   struct {
		Invocations int64 `json:"invocations"`
		Completed   int64 `json:"completed"`
		Renewals    int64 `json:"renewals"`
		Expiries    int64 `json:"expiries"`
		Claims      int64 `json:"claims"`
		DupDones    int64 `json:"dupDones"`
	} `json:"stats"`
	Exhausted []json.RawMessage `json:"exhausted"`
}

func TestDeployFederatedAndInvoke(t *testing.T) {
	srv := newTestServer(t)
	deployFederatedETL(t, srv)

	var stats invokeResponse
	if code := doJSON(t, http.MethodPost, srv.URL+"/workflows/etl/invoke",
		map[string]any{"n": 4}, &stats); code != http.StatusOK {
		t.Fatalf("invoke status = %d", code)
	}
	if stats.Count != 4 || stats.MeanMs <= 0 {
		t.Fatalf("invoke stats = %+v", stats)
	}

	var st fedState
	if code := doJSON(t, http.MethodGet, srv.URL+"/workflows/etl/federation", nil, &st); code != http.StatusOK {
		t.Fatalf("federation status = %d", code)
	}
	if len(st.Members) != 2 {
		t.Fatalf("members = %v", st.Members)
	}
	if st.Stats.Invocations != 4 || st.Stats.Completed != 4 {
		t.Fatalf("federation stats = %+v", st.Stats)
	}
	if st.Stats.Renewals == 0 {
		t.Fatal("no lease renewals observed")
	}
	if st.Exhausted == nil {
		t.Fatal("exhausted list must encode as [], not null")
	}

	// Federated members are durable: the journal endpoint serves records.
	var jr map[string]any
	if code := doJSON(t, http.MethodGet, srv.URL+"/workflows/etl/journal", nil, &jr); code != http.StatusOK {
		t.Fatalf("journal status = %d", code)
	}
}

// TestFederationHandoffReturns503ThenSucceeds is the mid-handoff admission
// contract: kill a member, advance the clock into the claim's handoff
// window, and the invoke gets 503 + Retry-After; once the window closes
// the same request succeeds.
func TestFederationHandoffReturns503ThenSucceeds(t *testing.T) {
	srv := newTestServer(t)
	deployFederatedETL(t, srv)

	if code := doJSON(t, http.MethodPost, srv.URL+"/workflows/etl/invoke",
		map[string]any{"n": 1}, nil); code != http.StatusOK {
		t.Fatalf("warm invoke status = %d", code)
	}

	if code := doJSON(t, http.MethodPost, srv.URL+"/workflows/etl/federation",
		map[string]any{"op": "kill", "member": "engine-0"}, nil); code != http.StatusOK {
		t.Fatalf("kill status = %d", code)
	}
	// Lease TTL 1s + sweep period 250ms: 2s of clock puts us well inside
	// the 5s handoff window opened by the claim.
	if code := doJSON(t, http.MethodPost, srv.URL+"/workflows/etl/federation",
		map[string]any{"op": "advance", "advanceMs": 2000}, nil); code != http.StatusOK {
		t.Fatalf("advance status = %d", code)
	}
	var st fedState
	if code := doJSON(t, http.MethodGet, srv.URL+"/workflows/etl/federation", nil, &st); code != http.StatusOK {
		t.Fatalf("federation status = %d", code)
	}
	if st.Stats.Expiries == 0 || st.Stats.Claims == 0 {
		t.Fatalf("kill+advance produced no claim: %+v", st.Stats)
	}

	resp, err := http.Post(srv.URL+"/workflows/etl/invoke", "application/json",
		bytes.NewBufferString(`{"n":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("mid-handoff invoke status = %d, want 503", resp.StatusCode)
	}
	retry := resp.Header.Get("Retry-After")
	if retry == "" {
		t.Fatal("503 without Retry-After header")
	}
	if secs, err := strconv.Atoi(retry); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want integral seconds >= 1", retry)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body["error"], "handoff") {
		t.Fatalf("503 body = %v", body)
	}

	// Honor the hint: advance past the window and the request succeeds on
	// the surviving member.
	if code := doJSON(t, http.MethodPost, srv.URL+"/workflows/etl/federation",
		map[string]any{"op": "advance", "advanceMs": (secsToMs(retry) + 1000)}, nil); code != http.StatusOK {
		t.Fatalf("second advance status = %d", code)
	}
	var stats invokeResponse
	if code := doJSON(t, http.MethodPost, srv.URL+"/workflows/etl/invoke",
		map[string]any{"n": 1}, &stats); code != http.StatusOK {
		t.Fatalf("post-handoff invoke status = %d, want 200", code)
	}
	if stats.Count != 1 {
		t.Fatalf("post-handoff stats = %+v", stats)
	}
	if code := doJSON(t, http.MethodGet, srv.URL+"/workflows/etl/federation", nil, &st); code != http.StatusOK {
		t.Fatalf("federation status = %d", code)
	}
	if st.Stats.DupDones != 0 {
		t.Fatalf("handoff double-finished %d invocations", st.Stats.DupDones)
	}
}

func secsToMs(retryAfter string) int {
	secs, _ := strconv.Atoi(retryAfter)
	return secs * 1000
}

// TestFederationEndpointRequiresFederatedDeploy pins the 404 contract.
func TestFederationEndpointRequiresFederatedDeploy(t *testing.T) {
	srv := newTestServer(t)
	deployETL(t, srv)
	if code := doJSON(t, http.MethodGet, srv.URL+"/workflows/etl/federation", nil, nil); code != http.StatusNotFound {
		t.Fatalf("GET federation on plain deploy = %d, want 404", code)
	}
	if code := doJSON(t, http.MethodPost, srv.URL+"/workflows/etl/federation",
		map[string]any{"op": "kill", "member": "engine-0"}, nil); code != http.StatusNotFound {
		t.Fatalf("POST federation on plain deploy = %d, want 404", code)
	}
}

// TestFederationAdminValidation pins the 400 contracts of the admin ops.
func TestFederationAdminValidation(t *testing.T) {
	srv := newTestServer(t)
	deployFederatedETL(t, srv)
	cases := []map[string]any{
		{"op": "reboot"},                                     // unknown op
		{"op": "stall", "member": "engine-0"},                // missing durationMs
		{"op": "advance"},                                    // missing advanceMs
		{"op": "kill", "member": "engine-99"},                // unknown member
		{"op": "stall", "member": "nope", "durationMs": 100}, // unknown member
	}
	for _, c := range cases {
		if code := doJSON(t, http.MethodPost, srv.URL+"/workflows/etl/federation", c, nil); code != http.StatusBadRequest {
			t.Errorf("op %v = %d, want 400", c, code)
		}
	}
	// Open-loop and args invokes are closed-loop-only on federated apps.
	if code := doJSON(t, http.MethodPost, srv.URL+"/workflows/etl/invoke",
		map[string]any{"n": 1, "ratePerMinute": 60}, nil); code != http.StatusBadRequest {
		t.Errorf("open-loop federated invoke = %d, want 400", code)
	}
}

// TestClusterSurfacesExhaustionCounters checks the /cluster failures map
// carries the typed re-issue-exhaustion surface (zero on a healthy run).
func TestClusterSurfacesExhaustionCounters(t *testing.T) {
	srv := newTestServer(t)
	deployFederatedETL(t, srv)
	if code := doJSON(t, http.MethodPost, srv.URL+"/workflows/etl/invoke",
		map[string]any{"n": 2}, nil); code != http.StatusOK {
		t.Fatal("invoke failed")
	}
	var cl struct {
		Failures       map[string]int64  `json:"failures"`
		ExhaustedSteps []json.RawMessage `json:"exhaustedSteps"`
	}
	if code := doJSON(t, http.MethodGet, srv.URL+"/cluster", nil, &cl); code != http.StatusOK {
		t.Fatal("cluster endpoint failed")
	}
	if _, ok := cl.Failures["reissuesExhausted"]; !ok {
		t.Fatal("failures map missing reissuesExhausted")
	}
	if cl.Failures["reissuesExhausted"] != 0 {
		t.Fatalf("healthy run exhausted %d steps", cl.Failures["reissuesExhausted"])
	}
	if cl.ExhaustedSteps == nil {
		t.Fatal("exhaustedSteps must encode as [], not null")
	}
}
