// Package repro is the root of the FaaSFlow reproduction (ASPLOS 2022).
//
// The public API lives in repro/faasflow; the substrates (simulation
// kernel, network fabric, cluster/container model, storage, scheduler,
// engines, workloads, experiment harness) live under repro/internal.
// bench_test.go in this directory holds one benchmark per paper table and
// figure; run them with:
//
//	go test -bench=Fig -benchmem .
package repro
