package faasflow

import (
	"testing"
	"time"
)

func fastFederation() FederationOptions {
	return FederationOptions{
		Members:      2,
		Shards:       8,
		LeaseTTL:     500 * time.Millisecond,
		RenewEvery:   125 * time.Millisecond,
		CheckEvery:   125 * time.Millisecond,
		HandoffDelay: 100 * time.Millisecond,
		Seed:         9,
	}
}

// TestDeployFederatedRoutesAndCompletes is the public happy path: a
// federated deploy routes closed-loop invocations across member engines by
// shard and completes them all.
func TestDeployFederatedRoutesAndCompletes(t *testing.T) {
	c := NewCluster()
	app, err := c.DeployFederated(Benchmark("IR"), WorkerSP, fastFederation())
	if err != nil {
		t.Fatal(err)
	}
	if !app.Federated() {
		t.Fatal("federated deploy reports Federated() == false")
	}
	if !app.Durable() {
		t.Fatal("federation members must be durable")
	}
	if got := app.FederationMembers(); len(got) != 2 || got[0] != "engine-0" {
		t.Fatalf("members = %v", got)
	}
	const n = 8
	stats, err := app.RunFederated(n)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Count != n {
		t.Fatalf("completed %d of %d", stats.Count, n)
	}
	fs := app.FederationStats()
	if fs.Invocations != n || fs.Completed != n || fs.Failed != 0 {
		t.Fatalf("federation stats = %+v", fs)
	}
	if fs.Renewals == 0 {
		t.Fatal("no lease renewals during the run")
	}
	if fs.DupDones != 0 {
		t.Fatalf("%d invocations finished twice", fs.DupDones)
	}
	// Both members committed journal records: the router spread shards.
	active := 0
	for _, m := range fs.Members {
		if m.Committed > 0 {
			active++
		}
	}
	if active != 2 {
		t.Fatalf("only %d of 2 members committed work", active)
	}
}

// TestKillMemberFailsOverPublic kills a member mid-batch through the
// public surface: a survivor claims its shards, adopts its invocations via
// journal handoff, and the batch still completes exactly.
func TestKillMemberFailsOverPublic(t *testing.T) {
	c := NewCluster()
	app, err := c.DeployFederated(Benchmark("IR"), WorkerSP, fastFederation())
	if err != nil {
		t.Fatal(err)
	}
	// Kill engine-0 once the batch is in flight; RunFederated's stepped
	// clock drives lease expiry, the claim, and the handoff replay.
	killed := false
	c.tb.Env.Schedule(2*time.Second, func() {
		if err := app.KillFederationMember("engine-0"); err != nil {
			t.Errorf("kill: %v", err)
		}
		killed = true
	})
	const n = 10
	stats, err := app.RunFederated(n)
	if err != nil {
		t.Fatal(err)
	}
	if !killed {
		t.Fatal("kill never fired")
	}
	if stats.Count != n {
		t.Fatalf("completed %d of %d", stats.Count, n)
	}
	fs := app.FederationStats()
	if fs.Expiries == 0 || fs.Claims == 0 {
		t.Fatalf("no failover observed: %+v", fs)
	}
	if fs.DupDones != 0 {
		t.Fatalf("%d invocations finished twice across the handoff", fs.DupDones)
	}
	for _, m := range fs.Members {
		if m.DupDrops != 0 {
			t.Fatalf("member %s double-committed %d steps", m.ID, m.DupDrops)
		}
	}
	// The dead member owns nothing; the survivor owns every shard.
	for _, m := range fs.Members {
		if m.ID == "engine-0" && m.Shards != 0 {
			t.Fatalf("dead member still owns %d shards", m.Shards)
		}
	}
	if err := app.RestartFederationMember("engine-0"); err != nil {
		t.Fatal(err)
	}
}

// TestFederationMethodsRejectNonFederatedApps pins the error contract on
// plain deploys.
func TestFederationMethodsRejectNonFederatedApps(t *testing.T) {
	c := NewCluster()
	app, err := c.Deploy(Benchmark("IR"), WorkerSP)
	if err != nil {
		t.Fatal(err)
	}
	if app.Federated() {
		t.Fatal("plain deploy reports Federated() == true")
	}
	if _, err := app.RunFederated(1); err == nil {
		t.Error("RunFederated on plain app did not error")
	}
	if err := app.KillFederationMember("engine-0"); err == nil {
		t.Error("KillFederationMember on plain app did not error")
	}
	if _, pending := app.HandoffPending(); pending {
		t.Error("plain app reports a pending handoff")
	}
	if st := app.FederationStats(); st.Invocations != 0 || len(st.Members) != 0 {
		t.Errorf("plain app federation stats = %+v", st)
	}
}
