package faasflow

import (
	"context"
	"errors"
	"testing"
)

func TestLiveRunnerEndToEnd(t *testing.T) {
	wf, err := NewWorkflow("pipeline").
		Function("double", 0.01, 0).
		Function("sum", 0.01, 0).
		Task("a", "double", 0).
		Task("b", "double", 0).
		Task("total", "sum", 0).
		Pipe("a", "total").
		Pipe("b", "total").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	handlers := map[string]LiveHandler{
		"double": func(ctx context.Context, replica int, inputs []LiveInput) ([]byte, error) {
			return []byte{42}, nil
		},
		"sum": func(ctx context.Context, replica int, inputs []LiveInput) ([]byte, error) {
			var s byte
			for _, in := range inputs {
				s += in.Data[0]
			}
			return []byte{s}, nil
		},
	}
	r, err := NewLiveRunner(wf, handlers, LiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := out["total"]; len(got) != 1 || got[0] != 84 {
		t.Fatalf("total = %v, want [84]", got)
	}
}

func TestLiveRunnerMissingHandler(t *testing.T) {
	wf, err := NewWorkflow("x").
		Function("f", 0.01, 0).
		Task("a", "f", 0).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewLiveRunner(wf, map[string]LiveHandler{}, LiveOptions{}); err == nil {
		t.Fatal("missing handler accepted")
	}
}

func TestLiveRunnerErrorPropagates(t *testing.T) {
	wf, err := NewWorkflow("x").
		Function("f", 0.01, 0).
		Task("a", "f", 0).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	r, err := NewLiveRunner(wf, map[string]LiveHandler{
		"f": func(ctx context.Context, replica int, inputs []LiveInput) ([]byte, error) {
			return nil, boom
		},
	}, LiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}
