package faasflow

import (
	"time"

	"repro/internal/engine"
	"repro/internal/journal"
	"repro/internal/store"
)

// This file is the public durable-execution surface: deploy a workflow
// with a write-ahead journal so an engine crash recovers by replay instead
// of restart-from-scratch, and turn on k-way replication of FaaStore
// outputs so a node death recovers by fetching a surviving replica instead
// of re-executing producers.

// Durability tunes the durable-execution layer. The zero value enables
// journaling with default I/O costs and leaves replication off.
type Durability struct {
	// SyncLatency is the journal's per-fsync cost (default 2ms).
	SyncLatency time.Duration
	// BatchWindow is the journal's group-commit window: appends arriving
	// within it share one fsync (default 500µs).
	BatchWindow time.Duration
	// ReplicationFactor writes every FaaStore output to this many worker
	// shards, chosen by graph locality (consumers first, then the
	// producer). 0 or 1 keeps the single-copy behaviour. Replication is a
	// cluster-wide store property; the factor applies to every durable app
	// on the cluster.
	ReplicationFactor int
	// RepairInterval is the delay before a dead shard's surviving keys are
	// re-replicated back up to the factor (default 10ms).
	RepairInterval time.Duration
	// Recovery tunes the fault-recovery layer, exactly as in
	// DeployWithRecovery; the zero value takes its defaults.
	Recovery Recovery
	// FastPath enables the data-plane fast path for this deployment, as in
	// DeployFast. Direct passing is automatically skipped while
	// ReplicationFactor > 1 (durability requires the replicated store hop);
	// memo hits still commit journal records so crash replay skips them.
	FastPath FastPath
}

// DeployDurable is DeployWithRecovery plus durable execution: every
// completed step commits a journal record before its successors observe
// it, CrashEngine/RestartEngine (or an injected EngineDown fault) recover
// by replaying the journal and re-dispatching only the uncommitted cut,
// and — when ReplicationFactor > 1 — FaaStore outputs survive node deaths
// on replica shards.
func (c *Cluster) DeployDurable(wf *Workflow, mode Mode, dur Durability) (*App, error) {
	rec := dur.Recovery
	if rec.TaskTimeout == 0 {
		rec.TaskTimeout = 30 * time.Second
	}
	if rec.BackoffBase == 0 {
		rec.BackoffBase = 200 * time.Millisecond
	}
	if rec.BackoffMax == 0 {
		rec.BackoffMax = 5 * time.Second
	}
	m := engine.ModeWorkerSP
	if mode == MasterSP {
		m = engine.ModeMasterSP
	}
	if dur.ReplicationFactor > 1 {
		c.tb.Runtime.Store.SetReplication(dur.ReplicationFactor, dur.RepairInterval)
		nodes := c.tb.Runtime.Nodes
		c.tb.Runtime.Store.SetAlive(func(n string) bool {
			node := nodes[n]
			return node == nil || !node.Failed()
		})
	}
	opts := engine.Options{
		Mode:        m,
		Data:        engine.DataStore,
		Journal:     journal.New(c.tb.Env, journal.Config{SyncLatency: dur.SyncLatency, BatchWindow: dur.BatchWindow}),
		TaskTimeout: rec.TaskTimeout,
		BackoffBase: rec.BackoffBase,
		BackoffMax:  rec.BackoffMax,
		MaxReissues: rec.MaxReissues,
		FastPath:    dur.FastPath,
	}
	dep, err := c.tb.Deploy(wf.bench, opts)
	if err != nil {
		return nil, err
	}
	return &App{cluster: c, dep: dep, opts: opts}, nil
}

// Durable reports whether the app was deployed with a journal.
func (a *App) Durable() bool { return a.dep.Engine.Journal() != nil }

// DurableStats aggregates an app's durable-execution counters: engine
// crashes, replay skips, re-dispatches, lost-input re-executions, and the
// journal's own append/commit/dup-drop counts.
type DurableStats = engine.DurableStats

// DurableStats reports the app's durable-execution counters so far.
func (a *App) DurableStats() DurableStats {
	return a.dep.Engine.DurableStatsSnapshot()
}

// JournalEntry is one durable step-commit record: workflow, invocation,
// step, attempt sequence, output keys, and the instant it became durable.
type JournalEntry = journal.Entry

// JournalEntries returns the app's committed journal records in commit
// order, or nil when the app is not durable.
func (a *App) JournalEntries() []JournalEntry {
	jr := a.dep.Engine.Journal()
	if jr == nil {
		return nil
	}
	return jr.Entries()
}

// JournalStats is the journal's cumulative counter set.
type JournalStats = journal.Stats

// ReplicationStats counts the replicated store's recovery work: cross-node
// replica writes, fallback reads served by a surviving replica, background
// re-replications, and keys lost with every copy.
type ReplicationStats = store.ReplStats

// ReplicationStats reports the cluster store's replication counters.
func (c *Cluster) ReplicationStats() ReplicationStats {
	return c.tb.Runtime.Store.ReplStats()
}
