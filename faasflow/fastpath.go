package faasflow

import (
	"repro/internal/engine"
	"repro/internal/store"
)

// This file is the public surface of the data-plane fast path: direct
// producer→consumer output passing over the fabric, DAG-lookahead container
// pre-warming, and content-addressed output memoization. All three are off
// by default; see docs/DATAPLANE.md for the fallback and cancellation
// rules.

// FastPath selects which data-plane fast-path features a deployment runs
// with: DirectPassing pushes outputs straight to consumer workers when
// placement is known (falling back to the store hop otherwise), Prewarm
// acquires a step's containers while its last predecessor is still
// executing, and Memoize returns cached outputs for repeated
// (function, input) pairs. MemoLookup is the simulated cache-probe cost
// (default 200µs).
type FastPath = engine.FastPathOptions

// FastPathStats aggregates a deployment's fast-path counters: memo
// hits/misses, direct pushes and store fallbacks, and pre-warm
// issues/claims/cancellations.
type FastPathStats = engine.FastPathStats

// DirectPassingStats counts the store layer's direct-passing work: pushes,
// per-worker copies, bytes moved, fallback reads served by a surviving
// holder, and keys lost with every holder.
type DirectPassingStats = store.DirectStats

// DeployFast is Deploy with the data-plane fast path enabled. The zero
// FastPath value is equivalent to Deploy.
func (c *Cluster) DeployFast(wf *Workflow, mode Mode, fp FastPath) (*App, error) {
	m := engine.ModeWorkerSP
	if mode == MasterSP {
		m = engine.ModeMasterSP
	}
	opts := engine.Options{Mode: m, Data: engine.DataStore, FastPath: fp}
	dep, err := c.tb.Deploy(wf.bench, opts)
	if err != nil {
		return nil, err
	}
	return &App{cluster: c, dep: dep, opts: opts}, nil
}

// FastPath reports the fast-path configuration the app was deployed with.
func (a *App) FastPath() FastPath { return a.opts.FastPath }

// FastPathStats reports the app's fast-path counters so far.
func (a *App) FastPathStats() FastPathStats {
	return a.dep.Engine.FastPathStatsSnapshot()
}

// DirectPassingStats reports the cluster store's direct-passing counters
// (cluster-wide: every deployment's pushes share the store).
func (c *Cluster) DirectPassingStats() DirectPassingStats {
	return c.tb.Runtime.Store.DirectStats()
}
