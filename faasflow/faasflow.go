// Package faasflow is the public API of the FaaSFlow reproduction: a
// serverless workflow engine with worker-side scheduling (WorkerSP) and
// adaptive hybrid storage (FaaStore), running on a deterministic simulated
// cluster, after "FaaSFlow: Enable Efficient Workflow Execution for
// Function-as-a-Service" (ASPLOS 2022).
//
// A minimal session:
//
//	wf, _ := faasflow.NewWorkflow("pipeline").
//		Function("extract", 0.2, 64<<20).
//		Function("load", 0.1, 32<<20).
//		Task("extract-step", "extract", 4<<20).
//		Task("load-step", "load", 0).
//		Pipe("extract-step", "load-step").
//		Build()
//
//	cluster := faasflow.NewCluster(faasflow.WithFaaStore(true))
//	app, _ := cluster.Deploy(wf, faasflow.WorkerSP)
//	stats := app.Run(100)
//	fmt.Println(stats.Mean, stats.P99)
//
// Workflows can equally be compiled from WDL YAML/JSON definitions
// (WorkflowFromWDL) or taken from the paper's eight benchmarks
// (Benchmarks, Benchmark).
package faasflow

import (
	"fmt"
	"time"

	"repro/internal/admission"
	"repro/internal/dag"
	"repro/internal/engine"
	"repro/internal/federation"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/wdl"
	"repro/internal/workloads"
)

// Mode selects the workflow scheduling pattern.
type Mode int

const (
	// WorkerSP is FaaSFlow's decentralized worker-side pattern.
	WorkerSP Mode = iota
	// MasterSP is the centralized HyperFlow-serverless baseline.
	MasterSP
)

func (m Mode) String() string {
	if m == MasterSP {
		return "MasterSP"
	}
	return "WorkerSP"
}

// Option configures a Cluster.
type Option func(*harness.ClusterSpec)

// WithWorkers sets the number of worker nodes (default 7, as in the paper).
func WithWorkers(n int) Option {
	return func(s *harness.ClusterSpec) { s.Workers = n }
}

// WithStorageBandwidthMBps throttles the storage/master node's link (the
// paper's wondershaper knob; default 50 MB/s).
func WithStorageBandwidthMBps(v float64) Option {
	return func(s *harness.ClusterSpec) { s.StorageBW = network.MBps(v) }
}

// WithFaaStore toggles the adaptive in-memory storage layer (default off:
// all intermediate data goes to the remote database).
func WithFaaStore(on bool) Option {
	return func(s *harness.ClusterSpec) { s.FaaStore = on }
}

// WithScaleLimit caps the scheduler's per-worker container demand.
func WithScaleLimit(n int) Option {
	return func(s *harness.ClusterSpec) { s.ScaleLimit = n }
}

// WithSeed fixes the scheduling hash seed for reproducible placements.
func WithSeed(seed uint64) Option {
	return func(s *harness.ClusterSpec) { s.Seed = seed }
}

// Cluster is a simulated FaaS cluster: worker nodes, a master/storage
// node, a fair-share network fabric, and (optionally) FaaStore.
type Cluster struct {
	tb  *harness.Testbed
	adm *admission.Controller // nil until SetAdmission; nil admits everything
}

// NewCluster builds a cluster with the paper's defaults (7 workers, 8
// cores / 32 GB each, 50 MB/s storage link) adjusted by opts.
func NewCluster(opts ...Option) *Cluster {
	spec := harness.ClusterSpec{FaaStore: true}
	for _, o := range opts {
		o(&spec)
	}
	return &Cluster{tb: harness.NewTestbed(spec)}
}

// Utilization is a snapshot of cluster resource use.
type Utilization struct {
	// Containers is the number of live (warm or busy) containers.
	Containers int
	// ColdStarts and WarmReuses are lifetime acquisition counters.
	ColdStarts, WarmReuses int64
	// CPUBusy is the summed core-busy time across workers.
	CPUBusy time.Duration
	// NetworkBytes is the total bytes that crossed the fabric.
	NetworkBytes int64
	// StoreLocalHits and StoreRemoteOps count FaaStore routing decisions.
	StoreLocalHits, StoreRemoteOps int64
}

// Utilization reports cumulative cluster resource usage across all
// deployments and runs on this cluster.
func (c *Cluster) Utilization() Utilization {
	var u Utilization
	for _, id := range c.tb.Workers {
		n := c.tb.Runtime.Nodes[id]
		st := n.Stats()
		u.Containers += n.Containers()
		u.ColdStarts += st.ColdStarts
		u.WarmReuses += st.WarmReuses
		u.CPUBusy += st.CPUBusy
	}
	u.NetworkBytes = c.tb.Fabric.Stats().TotalBytes
	u.StoreLocalHits = c.tb.Runtime.Store.LocalHits()
	remote := c.tb.Remote.Stats()
	u.StoreRemoteOps = remote.Puts + remote.Gets
	return u
}

// Workflow is a deployable workflow: a DAG plus its function cost models.
type Workflow struct {
	bench *workloads.Benchmark
}

// Name reports the workflow's name.
func (w *Workflow) Name() string { return w.bench.Name }

// Tasks reports the number of task nodes.
func (w *Workflow) Tasks() int { return w.bench.Graph.TaskCount() }

// TotalBytes reports the payload bytes a single invocation moves across
// all edges.
func (w *Workflow) TotalBytes() int64 { return w.bench.Graph.TotalBytes() }

// Benchmarks returns the paper's eight evaluation workloads.
func Benchmarks() []*Workflow {
	var out []*Workflow
	for _, b := range workloads.All() {
		out = append(out, &Workflow{bench: b})
	}
	return out
}

// Benchmark returns one paper workload by its short name (Cyc, Epi, Gen,
// Soy, Vid, IR, FP, WC) or nil.
func Benchmark(name string) *Workflow {
	b := workloads.ByName(name)
	if b == nil {
		return nil
	}
	return &Workflow{bench: b}
}

// FunctionSpec models one function's cost: execution seconds on an
// uncontended core and its peak memory in bytes.
type FunctionSpec struct {
	ExecSeconds float64
	MemPeak     int64
}

// WorkflowFromWDL compiles a WDL YAML definition into a Workflow. Every
// function referenced by the definition must appear in fns.
func WorkflowFromWDL(src string, fns map[string]FunctionSpec) (*Workflow, error) {
	parsed, err := wdl.Parse(src)
	if err != nil {
		return nil, err
	}
	return fromParsed(parsed, fns)
}

// WorkflowFromJSON compiles a JSON workflow definition (same schema as
// WDL YAML).
func WorkflowFromJSON(src []byte, fns map[string]FunctionSpec) (*Workflow, error) {
	parsed, err := wdl.ParseJSON(src)
	if err != nil {
		return nil, err
	}
	return fromParsed(parsed, fns)
}

func fromParsed(parsed *wdl.Workflow, fns map[string]FunctionSpec) (*Workflow, error) {
	specs := map[string]workloads.FunctionSpec{}
	for name, f := range fns {
		if f.ExecSeconds <= 0 {
			return nil, fmt.Errorf("faasflow: function %q has non-positive ExecSeconds", name)
		}
		mem := f.MemPeak
		if mem <= 0 {
			mem = 64 << 20
		}
		specs[name] = workloads.FunctionSpec{Name: name, ExecSeconds: f.ExecSeconds, MemPeak: mem}
	}
	bench := &workloads.Benchmark{
		Name:      parsed.Name,
		Graph:     parsed.Graph,
		Functions: specs,
	}
	if err := bench.Validate(); err != nil {
		return nil, err
	}
	return &Workflow{bench: bench}, nil
}

// App is a workflow deployed onto a cluster, ready to invoke.
type App struct {
	cluster *Cluster
	dep     *harness.Deployment
	tracer  *engine.Tracer
	// opts records the deployment options so what-if analysis can replay
	// this exact configuration on a fresh testbed.
	opts engine.Options
	// fed is non-nil for DeployFederated apps: dep is then member 0 of the
	// federation and invocations must route through fed (see federation.go).
	fed *federation.Federation
}

// StartTrace begins recording per-executor phase spans (container acquire,
// input fetch, execute, output store) for subsequent runs.
func (a *App) StartTrace() {
	a.tracer = engine.NewTracer()
	a.dep.Engine.SetTracer(a.tracer)
}

// TraceJSON exports the recorded trace in Chrome trace format (load it in
// chrome://tracing or Perfetto). It errors when StartTrace was not called.
func (a *App) TraceJSON() ([]byte, error) {
	if a.tracer == nil {
		return nil, fmt.Errorf("faasflow: StartTrace was not called")
	}
	return a.tracer.ChromeJSON()
}

// Deploy schedules the workflow onto the cluster (Algorithm 1 grouping
// with FaaStore quota reclamation) and prepares it for invocation under
// the chosen pattern.
func (c *Cluster) Deploy(wf *Workflow, mode Mode) (*App, error) {
	m := engine.ModeWorkerSP
	if mode == MasterSP {
		m = engine.ModeMasterSP
	}
	opts := engine.Options{Mode: m, Data: engine.DataStore}
	dep, err := c.tb.Deploy(wf.bench, opts)
	if err != nil {
		return nil, err
	}
	return &App{cluster: c, dep: dep, opts: opts}, nil
}

// Stats summarizes a batch of invocations.
type Stats struct {
	Count    int
	Mean     time.Duration
	P50      time.Duration
	P99      time.Duration
	Max      time.Duration
	Timeouts float64 // fraction clamped at the 60 s deadline (open loop)
}

func statsOf(rec *metrics.Recorder) Stats {
	return Stats{
		Count:    rec.Count(),
		Mean:     rec.Mean(),
		P50:      rec.Percentile(0.5),
		P99:      rec.P99(),
		Max:      rec.Max(),
		Timeouts: rec.TimeoutRate(harness.Timeout),
	}
}

// Run sends n closed-loop invocations (each starts when the previous
// completes) after one warm-up pass and returns latency statistics.
func (a *App) Run(n int) Stats {
	rec := harness.ClosedLoop(a.cluster.tb.Env, a.dep.Engine, 1, n)
	return statsOf(rec)
}

// RunWithArgs sends n closed-loop invocations carrying input arguments;
// switch steps evaluate their conditions against the arguments and run
// only the matching branch.
func (a *App) RunWithArgs(args map[string]any, n int) Stats {
	rec := &metrics.Recorder{}
	remaining := n
	var next func()
	next = func() {
		if remaining == 0 {
			return
		}
		remaining--
		a.dep.Engine.InvokeArgs(args, func(r engine.Result) {
			rec.Add(r.Latency())
			next()
		})
	}
	next()
	a.cluster.tb.Env.Run()
	return statsOf(rec)
}

// RunOpenLoop sends n invocations at a fixed arrival rate regardless of
// completions; latencies clamp at the 60 s deadline.
func (a *App) RunOpenLoop(perMinute float64, n int) Stats {
	rec := harness.OpenLoop(a.cluster.tb.Env, a.dep.Engine, perMinute, 1, n)
	return statsOf(rec)
}

// RunOpenLoopPoisson is RunOpenLoop with Poisson (exponential
// inter-arrival) traffic instead of a fixed interval. Deterministic for a
// given seed.
func (a *App) RunOpenLoopPoisson(perMinute float64, n int, seed uint64) Stats {
	rec := harness.OpenLoopPoisson(a.cluster.tb.Env, a.dep.Engine, perMinute, 1, n, seed)
	return statsOf(rec)
}

// RunConcurrently drives one closed-loop client per app simultaneously —
// the co-location scenario of the paper's §5.5. All apps must be deployed
// on the same cluster; it returns one Stats per app, in input order.
func RunConcurrently(apps []*App, n int) ([]Stats, error) {
	if len(apps) == 0 {
		return nil, nil
	}
	c := apps[0].cluster
	engines := make([]*engine.Deployment, len(apps))
	for i, a := range apps {
		if a.cluster != c {
			return nil, fmt.Errorf("faasflow: RunConcurrently requires all apps on one cluster")
		}
		engines[i] = a.dep.Engine
	}
	recs := harness.CoRun(c.tb.Env, engines, 1, n)
	out := make([]Stats, len(recs))
	for i, r := range recs {
		out[i] = statsOf(r)
	}
	return out, nil
}

// Placement reports where each workflow step runs, by step name.
func (a *App) Placement() map[string]string {
	out := map[string]string{}
	place := a.dep.Engine.Placement()
	for _, n := range a.dep.Bench.Graph.Nodes() {
		out[n.Name] = place[n.ID]
	}
	return out
}

// Groups reports how many function groups the scheduler formed.
func (a *App) Groups() int { return len(a.dep.Placement.Groups) }

// LocalizedFraction reports the fraction of edge payload bytes that stay
// worker-local under the current placement.
func (a *App) LocalizedFraction() float64 {
	local, total := a.dep.Placement.LocalityBytes(a.dep.Bench.Graph)
	if total == 0 {
		return 0
	}
	return float64(local) / float64(total)
}

// Refresh runs one feedback partition iteration (collect observed
// container scale, regroup, red-black redeploy).
func (a *App) Refresh() error {
	_, err := harness.RefreshPlacement(a.cluster.tb, a.dep)
	return err
}

// CriticalExec reports the workflow's critical-path execution time — the
// lower bound on any invocation's latency.
func (a *App) CriticalExec() time.Duration {
	return time.Duration(a.dep.Engine.CriticalExecSeconds() * float64(time.Second))
}

// Builder assembles a workflow programmatically. Errors accumulate and
// surface at Build.
type Builder struct {
	name  string
	g     *dag.Graph
	fns   map[string]workloads.FunctionSpec
	ids   map[string]dag.NodeID
	bytes map[string]int64
	err   error
}

// NewWorkflow starts a builder for a workflow with the given name.
func NewWorkflow(name string) *Builder {
	return &Builder{
		name:  name,
		g:     dag.New(name),
		fns:   map[string]workloads.FunctionSpec{},
		ids:   map[string]dag.NodeID{},
		bytes: map[string]int64{},
	}
}

func (b *Builder) fail(format string, args ...any) *Builder {
	if b.err == nil {
		b.err = fmt.Errorf("faasflow: "+format, args...)
	}
	return b
}

// Function registers a function cost model.
func (b *Builder) Function(name string, execSeconds float64, memPeak int64) *Builder {
	if execSeconds <= 0 {
		return b.fail("function %q: non-positive ExecSeconds", name)
	}
	if memPeak <= 0 {
		memPeak = 64 << 20
	}
	b.fns[name] = workloads.FunctionSpec{Name: name, ExecSeconds: execSeconds, MemPeak: memPeak}
	return b
}

// Task adds a workflow step invoking a registered function. outputBytes is
// the payload the step sends each successor.
func (b *Builder) Task(step, function string, outputBytes int64) *Builder {
	if _, dup := b.ids[step]; dup {
		return b.fail("duplicate step %q", step)
	}
	if outputBytes < 0 {
		return b.fail("step %q: negative output", step)
	}
	b.ids[step] = b.g.AddTask(step, function)
	b.bytes[step] = outputBytes
	return b
}

// Pipe connects two previously added steps; the payload is the producer's
// registered output size.
func (b *Builder) Pipe(from, to string) *Builder {
	fid, ok := b.ids[from]
	if !ok {
		return b.fail("unknown step %q", from)
	}
	tid, ok := b.ids[to]
	if !ok {
		return b.fail("unknown step %q", to)
	}
	b.g.Connect(fid, tid, b.bytes[from])
	return b
}

// Build validates and returns the workflow.
func (b *Builder) Build() (*Workflow, error) {
	if b.err != nil {
		return nil, b.err
	}
	bench := &workloads.Benchmark{Name: b.name, Graph: b.g, Functions: b.fns}
	if err := bench.Validate(); err != nil {
		return nil, err
	}
	return &Workflow{bench: bench}, nil
}
