package faasflow

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/admission"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// This file is the public overload-control surface: front-door admission
// (token-bucket rate limit plus a concurrent-workflow cap) and
// deadline-bounded invocation. See docs/OVERLOAD.md for the knobs and the
// goodput-curve methodology behind them.

// ErrOverloaded matches (via errors.Is) every admission rejection — from
// Cluster.Admit, App.RunAdmitted accounting, and the gateway's 429 path.
var ErrOverloaded = admission.ErrOverloaded

// OverloadError is an admission rejection: which limit fired and how long
// the client should wait before retrying (the gateway's Retry-After hint).
type OverloadError struct {
	Reason     string        // "rate" | "concurrency"
	RetryAfter time.Duration // suggested client backoff
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("faasflow: overloaded (%s limit), retry after %v", e.Reason, e.RetryAfter)
}

// Is makes errors.Is(err, ErrOverloaded) succeed for every rejection.
func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }

// AdmissionConfig fixes the cluster's front-door limits. Zero values
// disable the corresponding limit.
type AdmissionConfig struct {
	// RatePerSec is the sustained workflow-admission rate (token bucket).
	RatePerSec float64
	// Burst is the bucket capacity; 0 defaults to max(1, RatePerSec).
	Burst float64
	// MaxConcurrent caps admitted workflows in flight.
	MaxConcurrent int
}

// SetAdmission installs (or, with the zero config, effectively disables)
// front-door admission control on the cluster. Every workflow start —
// Cluster.Admit, App.RunAdmitted, and the gateway's invoke endpoint —
// passes through it.
func (c *Cluster) SetAdmission(cfg AdmissionConfig) error {
	ctl, err := admission.New(c.tb.Env, admission.Config{
		RatePerSec:    cfg.RatePerSec,
		Burst:         cfg.Burst,
		MaxConcurrent: cfg.MaxConcurrent,
	})
	if err != nil {
		return err
	}
	ctl.SetBus(c.tb.Bus())
	c.adm = ctl
	return nil
}

// Admit asks the admission controller for one workflow start. On success
// it returns a release closure the caller must invoke when the workflow
// finishes; on overload it returns an *OverloadError matching
// ErrOverloaded. With no controller installed everything is admitted.
func (c *Cluster) Admit(workflow string) (release func(), err error) {
	if err := c.adm.Admit(workflow); err != nil {
		var ae *admission.Error
		if errors.As(err, &ae) {
			return nil, &OverloadError{Reason: ae.Reason, RetryAfter: ae.RetryAfter}
		}
		return nil, err
	}
	if c.adm == nil {
		return func() {}, nil
	}
	return c.adm.Release, nil
}

// AdmissionStats reports the controller's lifetime decision counters.
type AdmissionStats struct {
	Admitted            int64
	RejectedRate        int64
	RejectedConcurrency int64
}

// Rejected sums rejections across reasons.
func (s AdmissionStats) Rejected() int64 { return s.RejectedRate + s.RejectedConcurrency }

// AdmissionStats reports the cluster's admission counters (zero without a
// controller installed).
func (c *Cluster) AdmissionStats() AdmissionStats {
	st := c.adm.Stats()
	return AdmissionStats{
		Admitted:            st.Admitted,
		RejectedRate:        st.RejectedRate,
		RejectedConcurrency: st.RejectedConcurrency,
	}
}

// AdmittedStats extends Stats with per-outcome accounting for an
// open-loop run through the admission controller.
type AdmittedStats struct {
	Stats         // latency of goodput completions only
	Offered   int // arrivals scheduled
	Admitted  int // past the controller
	Rejected  int // turned away with ErrOverloaded
	Goodput   int // admitted, completed, neither failed nor deadlined
	Deadlined int // admitted but ran out of deadline
	Failed    int // admitted but failed inside the engine (queue shed)
}

// RunAdmitted sends n open-loop invocations at a fixed arrival rate
// through the cluster's admission controller, each carrying the given
// end-to-end deadline (0 = none). Rejected arrivals are counted, not
// retried; admitted work is invoked with the deadline propagated through
// dispatch, so queued and in-flight steps cancel once it passes.
func (a *App) RunAdmitted(perMinute float64, n int, deadline time.Duration) AdmittedStats {
	c := a.cluster
	rec := &metrics.Recorder{}
	var st AdmittedStats
	st.Offered = n
	interval := time.Duration(60 / perMinute * float64(time.Second))
	for i := 0; i < n; i++ {
		delay := time.Duration(i) * interval
		c.tb.Env.Schedule(delay, func() {
			release, err := c.Admit(a.dep.Bench.Name)
			if err != nil {
				st.Rejected++
				return
			}
			st.Admitted++
			var dl sim.Time
			if deadline > 0 {
				dl = c.tb.Env.Now() + sim.Time(deadline)
			}
			a.dep.Engine.InvokeOpts(engine.InvokeOptions{Deadline: dl}, func(r engine.Result) {
				release()
				switch {
				case r.DeadlineExceeded:
					st.Deadlined++
				case r.Failed:
					st.Failed++
				default:
					st.Goodput++
					rec.Add(r.Latency())
				}
			})
		})
	}
	c.tb.Env.Run()
	st.Stats = statsOf(rec)
	return st
}
