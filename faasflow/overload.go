package faasflow

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/admission"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// This file is the public overload-control surface: front-door admission
// (token-bucket rate limit plus a concurrent-workflow cap) and
// deadline-bounded invocation. See docs/OVERLOAD.md for the knobs and the
// goodput-curve methodology behind them.

// ErrOverloaded matches (via errors.Is) every admission rejection — from
// Cluster.Admit, App.RunAdmitted accounting, and the gateway's 429 path.
var ErrOverloaded = admission.ErrOverloaded

// OverloadError is an admission rejection: which limit fired, which tenant
// the request carried, and how long the client should wait before retrying
// (the gateway's Retry-After hint).
type OverloadError struct {
	Reason     string        // "rate" | "concurrency" | "tenant-rate" | "tenant-concurrency"
	Tenant     string        // tenant identity of the rejected request ("" = untenanted)
	RetryAfter time.Duration // suggested client backoff
}

func (e *OverloadError) Error() string {
	if e.Tenant != "" {
		return fmt.Sprintf("faasflow: overloaded (%s limit, tenant %q), retry after %v",
			e.Reason, e.Tenant, e.RetryAfter)
	}
	return fmt.Sprintf("faasflow: overloaded (%s limit), retry after %v", e.Reason, e.RetryAfter)
}

// Is makes errors.Is(err, ErrOverloaded) succeed for every rejection.
func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }

// TenantConfig is one tenant's slice of the admission controller; see
// admission.TenantConfig for the derivation of zero-value fields from the
// tenant's weighted share of the global limits.
type TenantConfig struct {
	// Weight is the tenant's relative share among configured tenants
	// (0 defaults to 1). Also drives weighted-fair Acquire queueing when
	// installed through SetTenantWeights.
	Weight float64
	// RatePerSec overrides the tenant's sustained admission rate.
	RatePerSec float64
	// Burst overrides the tenant's bucket capacity.
	Burst float64
	// MaxConcurrent overrides the tenant's in-flight cap.
	MaxConcurrent int
}

// AdmissionConfig fixes the cluster's front-door limits. Zero values
// disable the corresponding limit.
type AdmissionConfig struct {
	// RatePerSec is the sustained workflow-admission rate (token bucket).
	RatePerSec float64
	// Burst is the bucket capacity; 0 defaults to max(1, RatePerSec).
	Burst float64
	// MaxConcurrent caps admitted workflows in flight.
	MaxConcurrent int
	// Tenants layers per-tenant weighted buckets and caps under the global
	// limits (see docs/TENANCY.md). Tenants outside the map pass only the
	// global gates.
	Tenants map[string]TenantConfig
}

// SetAdmission installs (or, with the zero config, effectively disables)
// front-door admission control on the cluster. Every workflow start —
// Cluster.Admit, App.RunAdmitted, and the gateway's invoke endpoint —
// passes through it. Tenant weights in cfg.Tenants are also installed as
// the cluster's weighted-fair Acquire queueing weights.
func (c *Cluster) SetAdmission(cfg AdmissionConfig) error {
	var tenants map[string]admission.TenantConfig
	if len(cfg.Tenants) > 0 {
		tenants = make(map[string]admission.TenantConfig, len(cfg.Tenants))
		weights := make(map[string]float64, len(cfg.Tenants))
		for name, tc := range cfg.Tenants {
			tenants[name] = admission.TenantConfig{
				Weight:        tc.Weight,
				RatePerSec:    tc.RatePerSec,
				Burst:         tc.Burst,
				MaxConcurrent: tc.MaxConcurrent,
			}
			w := tc.Weight
			if w == 0 {
				w = 1
			}
			weights[name] = w
		}
		c.tb.SetTenantWeights(weights)
	}
	ctl, err := admission.New(c.tb.Env, admission.Config{
		RatePerSec:    cfg.RatePerSec,
		Burst:         cfg.Burst,
		MaxConcurrent: cfg.MaxConcurrent,
		Tenants:       tenants,
	})
	if err != nil {
		return err
	}
	ctl.SetBus(c.tb.Bus())
	c.adm = ctl
	return nil
}

// SetTenantWeights installs relative tenant weights for weighted-fair
// Acquire queueing on every worker node, independent of admission control.
func (c *Cluster) SetTenantWeights(weights map[string]float64) {
	c.tb.SetTenantWeights(weights)
}

// Admit asks the admission controller for one workflow start. On success
// it returns a release closure the caller must invoke when the workflow
// finishes; on overload it returns an *OverloadError matching
// ErrOverloaded. With no controller installed everything is admitted.
func (c *Cluster) Admit(workflow string) (release func(), err error) {
	if err := c.adm.Admit(workflow); err != nil {
		var ae *admission.Error
		if errors.As(err, &ae) {
			return nil, &OverloadError{Reason: ae.Reason, RetryAfter: ae.RetryAfter}
		}
		return nil, err
	}
	if c.adm == nil {
		return func() {}, nil
	}
	return c.adm.Release, nil
}

// AdmitTenant is Admit with tenant attribution: the request passes both the
// global gates and the tenant's weighted slice, the returned release
// closure is idempotent, and a rejection's OverloadError names the tenant.
func (c *Cluster) AdmitTenant(workflow, tenant string) (release func(), err error) {
	release, err = c.adm.AdmitTenant(workflow, tenant)
	if err != nil {
		var ae *admission.Error
		if errors.As(err, &ae) {
			return nil, &OverloadError{Reason: ae.Reason, Tenant: ae.Tenant, RetryAfter: ae.RetryAfter}
		}
		return nil, err
	}
	return release, nil
}

// AdmissionLive reports admitted workflows currently in flight — the
// Admit/Release pairing invariant surface: it must return to 0 once every
// started workflow has finished (0 without a controller installed).
func (c *Cluster) AdmissionLive() int { return c.adm.Live() }

// AdmissionStats reports the controller's lifetime decision counters.
type AdmissionStats struct {
	Admitted            int64
	RejectedRate        int64
	RejectedConcurrency int64
}

// Rejected sums rejections across reasons.
func (s AdmissionStats) Rejected() int64 { return s.RejectedRate + s.RejectedConcurrency }

// AdmissionStats reports the cluster's admission counters (zero without a
// controller installed).
func (c *Cluster) AdmissionStats() AdmissionStats {
	st := c.adm.Stats()
	return AdmissionStats{
		Admitted:            st.Admitted,
		RejectedRate:        st.RejectedRate,
		RejectedConcurrency: st.RejectedConcurrency,
	}
}

// TenantAdmissionStats is one tenant's slice of the admission counters,
// with the tenant's weight and effective limits echoed alongside.
type TenantAdmissionStats struct {
	Tenant              string  `json:"tenant"`
	Weight              float64 `json:"weight"`
	RatePerSec          float64 `json:"ratePerSec"`
	MaxConcurrent       int     `json:"maxConcurrent"`
	Live                int     `json:"live"`
	Admitted            int64   `json:"admitted"`
	Released            int64   `json:"released"`
	RejectedRate        int64   `json:"rejectedRate"`
	RejectedConcurrency int64   `json:"rejectedConcurrency"`
	RejectedGlobal      int64   `json:"rejectedGlobal"`
}

// TenantAdmissionStats reports per-tenant admission counters, sorted by
// tenant name (nil without a controller installed).
func (c *Cluster) TenantAdmissionStats() []TenantAdmissionStats {
	stats := c.adm.TenantStats()
	if len(stats) == 0 {
		return nil
	}
	out := make([]TenantAdmissionStats, 0, len(stats))
	for _, st := range stats {
		out = append(out, TenantAdmissionStats{
			Tenant:              st.Tenant,
			Weight:              st.Weight,
			RatePerSec:          st.RatePerSec,
			MaxConcurrent:       st.MaxConcurrent,
			Live:                st.Live,
			Admitted:            st.Admitted,
			Released:            st.Released,
			RejectedRate:        st.RejectedRate,
			RejectedConcurrency: st.RejectedConcurrency,
			RejectedGlobal:      st.RejectedGlobal,
		})
	}
	return out
}

// AdmittedStats extends Stats with per-outcome accounting for an
// open-loop run through the admission controller.
type AdmittedStats struct {
	Stats         // latency of goodput completions only
	Offered   int // arrivals scheduled
	Admitted  int // past the controller
	Rejected  int // turned away with ErrOverloaded
	Goodput   int // admitted, completed, neither failed nor deadlined
	Deadlined int // admitted but ran out of deadline
	Failed    int // admitted but failed inside the engine (queue shed)
}

// RunAdmitted sends n open-loop invocations at a fixed arrival rate
// through the cluster's admission controller, each carrying the given
// end-to-end deadline (0 = none). Rejected arrivals are counted, not
// retried; admitted work is invoked with the deadline propagated through
// dispatch, so queued and in-flight steps cancel once it passes.
func (a *App) RunAdmitted(perMinute float64, n int, deadline time.Duration) AdmittedStats {
	c := a.cluster
	rec := &metrics.Recorder{}
	var st AdmittedStats
	st.Offered = n
	interval := time.Duration(60 / perMinute * float64(time.Second))
	for i := 0; i < n; i++ {
		delay := time.Duration(i) * interval
		c.tb.Env.Schedule(delay, func() {
			release, err := c.Admit(a.dep.Bench.Name)
			if err != nil {
				st.Rejected++
				return
			}
			st.Admitted++
			var dl sim.Time
			if deadline > 0 {
				dl = c.tb.Env.Now() + sim.Time(deadline)
			}
			a.dep.Engine.InvokeOpts(engine.InvokeOptions{Deadline: dl}, func(r engine.Result) {
				release()
				switch {
				case r.DeadlineExceeded:
					st.Deadlined++
				case r.Failed:
					st.Failed++
				default:
					st.Goodput++
					rec.Add(r.Latency())
				}
			})
		})
	}
	c.tb.Env.Run()
	st.Stats = statsOf(rec)
	return st
}
