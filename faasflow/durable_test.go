package faasflow

import (
	"testing"
	"time"
)

// TestDeployDurableJournalsSteps is the public durable path: every step of
// every invocation commits one journal record, readable back in order.
func TestDeployDurableJournalsSteps(t *testing.T) {
	c := NewCluster()
	app, err := c.DeployDurable(Benchmark("IR"), WorkerSP, Durability{})
	if err != nil {
		t.Fatal(err)
	}
	if !app.Durable() {
		t.Fatal("durable deploy reports Durable() == false")
	}
	const n = 3
	stats := app.Run(n)
	if stats.Count != n {
		t.Fatalf("completed %d of %d", stats.Count, n)
	}
	ds := app.DurableStats()
	// Run issues a warm-up invocation before the measured n.
	tasks := int64(Benchmark("IR").Tasks())
	if want := tasks * (n + 1); ds.Journal.Committed != want {
		t.Fatalf("journal committed %d records, want %d", ds.Journal.Committed, want)
	}
	if ds.Journal.DupDrops != 0 {
		t.Fatalf("healthy run dup-dropped %d commits", ds.Journal.DupDrops)
	}
	entries := app.JournalEntries()
	if int64(len(entries)) != ds.Journal.Committed {
		t.Fatalf("%d entries vs %d committed", len(entries), ds.Journal.Committed)
	}
	if entries[0].Workflow != "IR" || len(entries[0].Outputs) == 0 {
		t.Fatalf("first entry %+v lacks workflow/outputs", entries[0])
	}
}

// TestEngineDownFaultPublic injects the public EngineDown fault against a
// durable app mid-run: the engine must crash, replay committed steps on
// restart, and lose nothing.
func TestEngineDownFaultPublic(t *testing.T) {
	c := NewCluster()
	app, err := c.DeployDurable(Benchmark("IR"), WorkerSP, Durability{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.InjectFaults(FaultSchedule{{
		Kind: EngineDown, At: 2 * time.Second, Duration: 3 * time.Second,
	}}); err != nil {
		t.Fatal(err)
	}
	const n = 8
	stats := app.Run(n)
	if stats.Count != n {
		t.Fatalf("completed %d of %d invocations", stats.Count, n)
	}
	ds := app.DurableStats()
	if ds.EngineCrashes != 1 {
		t.Fatalf("engine crashes = %d, want 1", ds.EngineCrashes)
	}
	if ds.ReplaySkips == 0 {
		t.Error("restart replayed no committed steps")
	}
	if ds.Journal.DupDrops != 0 {
		t.Errorf("%d committed steps re-executed after restart", ds.Journal.DupDrops)
	}
}

// TestEngineDownWithoutDurableAppRejected: EngineDown needs at least one
// deployed engine to target.
func TestEngineDownWithoutDurableAppRejected(t *testing.T) {
	c := NewCluster()
	if err := c.InjectFaults(FaultSchedule{{Kind: EngineDown, At: time.Second}}); err == nil {
		t.Error("EngineDown accepted with no engines deployed")
	}
}

// TestReplicatedDeploySurvivesNodeDeath: with ReplicationFactor 2, killing
// a worker that holds outputs must be absorbed by replica reads — zero
// producer re-executions and zero lost inputs.
func TestReplicatedDeploySurvivesNodeDeath(t *testing.T) {
	c := NewCluster()
	app, err := c.DeployDurable(Benchmark("IR"), WorkerSP, Durability{
		ReplicationFactor: 2,
		Recovery:          Recovery{TaskTimeout: 20 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	var victim string
	for _, w := range app.Placement() {
		victim = w
		break
	}
	if err := c.InjectFaults(FaultSchedule{{
		Kind: NodeDown, Node: victim, At: 3 * time.Second, Duration: 4 * time.Second,
	}}); err != nil {
		t.Fatal(err)
	}
	const n = 10
	stats := app.Run(n)
	if stats.Count != n {
		t.Fatalf("completed %d of %d invocations", stats.Count, n)
	}
	ds := app.DurableStats()
	if ds.LostInputs != 0 || ds.Reexecs != 0 {
		t.Fatalf("replicated run re-executed producers: %d lost inputs, %d reexecs",
			ds.LostInputs, ds.Reexecs)
	}
	rs := c.ReplicationStats()
	if rs.ReplicaWrites == 0 {
		t.Error("replication factor 2 produced no replica writes")
	}
}
