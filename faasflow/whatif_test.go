package faasflow

import "testing"

// The what-if API replays the app's own deployment configuration on a
// fresh testbed, so a nil-perturbation run must reproduce the app's
// scenario and a scoped speedup must measurably help.
func TestAppWhatIf(t *testing.T) {
	cluster := NewCluster()
	app, err := cluster.Deploy(Benchmark("IR"), WorkerSP)
	if err != nil {
		t.Fatal(err)
	}
	base, err := app.WhatIf(nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if base.Count != 5 || base.MeanNs <= 0 {
		t.Fatalf("baseline = %+v", base)
	}
	fast, err := app.WhatIf(&Perturbation{Dim: DimExec, Factor: 0.5}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if fast.MeanNs >= base.MeanNs {
		t.Fatalf("halving exec did not help: %d -> %d", base.MeanNs, fast.MeanNs)
	}
	// The counterfactual runs must not disturb the live deployment.
	if stats := app.Run(3); stats.Count != 3 {
		t.Fatalf("app unusable after what-if: %+v", stats)
	}
}

func TestAppExplainRanksDimensions(t *testing.T) {
	cluster := NewCluster()
	app, err := cluster.Deploy(Benchmark("IR"), WorkerSP)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := app.Explain(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Ranked) != 5 {
		t.Fatalf("ranked %d dimensions, want 5", len(ex.Ranked))
	}
	for i := 1; i < len(ex.Ranked); i++ {
		if ex.Ranked[i].GainNs > ex.Ranked[i-1].GainNs {
			t.Fatalf("ranking not descending: %+v", ex.Ranked)
		}
	}
	if ex.String() == "" {
		t.Fatal("empty rendering")
	}
}

func TestAppCausalProfileDeterministic(t *testing.T) {
	cluster := NewCluster()
	app, err := cluster.Deploy(Benchmark("IR"), WorkerSP)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := app.CausalProfile(3)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := app.CausalProfile(3)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := p1.Marshal()
	b2, _ := p2.Marshal()
	if string(b1) != string(b2) {
		t.Fatal("same-app causal profiles are not byte-identical")
	}
}
