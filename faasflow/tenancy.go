package faasflow

import (
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// This file is the public multi-tenancy surface: tenant-attributed
// invocation, and the per-tenant cluster-queue counters behind the
// gateway's /tenants endpoint. Admission-side tenancy (weights, per-tenant
// buckets) lives in overload.go; see docs/TENANCY.md for the model.

// InvokeOptions tunes a batch of invocations sent through RunOpts.
type InvokeOptions struct {
	// Args are the invocation input arguments; switch steps evaluate their
	// branch conditions against them.
	Args map[string]any
	// Deadline bounds each invocation end to end (relative; 0 = none).
	Deadline time.Duration
	// Tenant attributes every invocation to a tenant: container acquisition
	// queues weighted-fair against other tenants, and journal records and
	// invocation events carry the label. "" = untenanted.
	Tenant string
}

// RunOpts sends n closed-loop invocations with per-invocation options and
// returns latency statistics. Unlike RunAdmitted it does not consult the
// admission controller — pair it with Cluster.AdmitTenant when front-door
// accounting matters.
func (a *App) RunOpts(opts InvokeOptions, n int) Stats {
	rec := &metrics.Recorder{}
	remaining := n
	var next func()
	next = func() {
		if remaining == 0 {
			return
		}
		remaining--
		var dl sim.Time
		if opts.Deadline > 0 {
			dl = a.cluster.tb.Env.Now() + sim.Time(opts.Deadline)
		}
		a.dep.Engine.InvokeOpts(engine.InvokeOptions{
			Args:     opts.Args,
			Deadline: dl,
			Tenant:   opts.Tenant,
		}, func(r engine.Result) {
			rec.Add(r.Latency())
			next()
		})
	}
	next()
	a.cluster.tb.Env.Run()
	return statsOf(rec)
}

// TenantQueueStats is one tenant's Acquire-queue counters on one worker
// node: how often its requests queued, were granted containers, or were
// shed, deadline-aborted, or fenced.
type TenantQueueStats struct {
	Node           string `json:"node"`
	Tenant         string `json:"tenant"`
	QueuedWaits    int64  `json:"queuedWaits"`
	Grants         int64  `json:"grants"`
	Shed           int64  `json:"shed"`
	DeadlineAborts int64  `json:"deadlineAborts"`
	FencedAcquires int64  `json:"fencedAcquires"`
}

// TenantQueueStats reports per-tenant Acquire-queue counters across every
// worker node, in (node, tenant) order. Only tenants that sent
// tenant-labelled requests appear.
func (c *Cluster) TenantQueueStats() []TenantQueueStats {
	var out []TenantQueueStats
	for _, id := range c.tb.Workers {
		n := c.tb.Runtime.Nodes[id]
		for _, st := range n.TenantStats() {
			out = append(out, TenantQueueStats{
				Node:           id,
				Tenant:         st.Tenant,
				QueuedWaits:    st.QueuedWaits,
				Grants:         st.Grants,
				Shed:           st.Shed,
				DeadlineAborts: st.DeadlineAborts,
				FencedAcquires: st.FencedAcquires,
			})
		}
	}
	return out
}
