package faasflow

import (
	"fmt"
	"os"
	"time"

	"repro/internal/obs"
)

// Observer collects everything one cluster emits while attached: a full
// event log (for trace export and critical-path analysis) and a labeled
// metrics registry (for Prometheus exposition). A detached cluster
// publishes nothing and pays no observation cost.
type Observer struct {
	bus *obs.Bus
	log *obs.TraceLog
	reg *obs.Registry
}

// NewObserver builds an observer with an event log and metrics collector
// already subscribed. Attach it with Cluster.AttachObserver.
func NewObserver() *Observer {
	bus := obs.NewBus()
	log := obs.NewTraceLog()
	reg := obs.NewRegistry()
	col := obs.NewCollector(reg)
	bus.Subscribe(log.Record)
	bus.Subscribe(col.Handle)
	bus.Subscribe(obs.NewLatencyTracker(col))
	return &Observer{bus: bus, log: log, reg: reg}
}

// AttachObserver wires the observer through every cluster substrate —
// engines (including already-deployed apps), container nodes, network
// fabric, store, and scheduler.
func (c *Cluster) AttachObserver(o *Observer) {
	if o == nil {
		c.tb.AttachBus(nil)
		c.adm.SetBus(nil)
		return
	}
	c.tb.AttachBus(o.bus)
	// SetAdmission and AttachObserver can run in either order; keep the
	// controller on whatever bus is current.
	c.adm.SetBus(o.bus)
}

// DetachObserver disconnects observation; subsequent activity publishes
// nothing.
func (c *Cluster) DetachObserver() {
	c.tb.AttachBus(nil)
	c.adm.SetBus(nil)
}

// PrometheusText renders the collected metrics in Prometheus text
// exposition format (what a /metrics endpoint serves).
func (o *Observer) PrometheusText() string { return o.reg.String() }

// ChromeTrace exports everything observed so far as a Chrome trace
// (load in chrome://tracing or Perfetto): executor phase spans per
// worker, flow and store-op tracks, per-node container/memory counters,
// and control-plane trigger chains.
func (o *Observer) ChromeTrace() ([]byte, error) { return obs.ChromeTrace(o.log) }

// WorkflowTrace exports the trace of one workflow's events only. It
// errors when no invocation of that workflow was observed.
func (o *Observer) WorkflowTrace(name string) ([]byte, error) {
	sub := o.log.ForWorkflow(name)
	if sub.Len() == 0 {
		return nil, fmt.Errorf("faasflow: no observed events for workflow %q", name)
	}
	return obs.ChromeTrace(sub)
}

// Workflows lists the workflow names with observed invocations.
func (o *Observer) Workflows() []string { return o.log.Workflows() }

// Events reports how many events have been observed.
func (o *Observer) Events() int { return o.log.Len() }

// Reset discards the event log and zeroes every gauge, so a reused
// observer does not report stale per-node occupancy from the previous run.
// Counters and histograms are cumulative and keep accumulating.
func (o *Observer) Reset() {
	o.log.Reset()
	o.reg.ZeroGauges()
}

// Breakdown attributes one invocation's end-to-end latency to latency
// components. Component keys are the analyzer's buckets: acquire, fetch,
// exec, store, transfer, queue, schedule.
type Breakdown struct {
	Workflow   string
	Invocation int64
	Mode       string
	Total      time.Duration
	Components map[string]time.Duration
	// Path is the critical path's step names, source first.
	Path []string
}

func toBreakdown(b *obs.Breakdown) Breakdown {
	comps := map[string]time.Duration{}
	for c, d := range b.ByComponent {
		comps[c.String()] = d
	}
	return Breakdown{
		Workflow:   b.Workflow,
		Invocation: b.Inv,
		Mode:       b.Mode,
		Total:      b.Total,
		Components: comps,
		Path:       append([]string(nil), b.Path...),
	}
}

// Breakdowns analyzes every completed invocation observed so far.
func (o *Observer) Breakdowns() ([]Breakdown, error) {
	bds, err := obs.AnalyzeAll(o.log)
	if err != nil {
		return nil, err
	}
	out := make([]Breakdown, len(bds))
	for i, b := range bds {
		out[i] = toBreakdown(b)
	}
	return out, nil
}

// Report aggregates breakdowns into per-component mean attribution.
type Report struct {
	Count     int
	MeanTotal time.Duration
	Mean      map[string]time.Duration
}

// Report analyzes all completed invocations and averages the attribution.
func (o *Observer) Report() (Report, error) {
	bds, err := obs.AnalyzeAll(o.log)
	if err != nil {
		return Report{}, err
	}
	s := obs.Summarize(bds)
	mean := map[string]time.Duration{}
	for c, d := range s.Mean {
		mean[c.String()] = d
	}
	return Report{Count: s.Count, MeanTotal: s.MeanTotal, Mean: mean}, nil
}

// ReportText renders the attribution report as an aligned table sorted by
// mean component time.
func (o *Observer) ReportText() (string, error) {
	bds, err := obs.AnalyzeAll(o.log)
	if err != nil {
		return "", err
	}
	return obs.Summarize(bds).String(), nil
}

// ResourceUtilization is one resource's condensed occupancy timeline: mean,
// peak, and p95 in native units, busy fraction, and — for capacitated
// resources — mean/peak occupancy in [0, 1].
type ResourceUtilization = obs.ResourceSummary

// Utilization folds everything observed so far into per-resource occupancy
// summaries — per-node CPU/memory/container/warm-pool counts, per-link
// achieved bandwidth, per-function queue depths — sorted by resource name.
func (o *Observer) Utilization() []ResourceUtilization {
	return obs.ComputeUtilization(o.log).Summaries()
}

// BottleneckSummary is one (workflow, mode) group's aggregated bottleneck
// attribution: per-component mean critical-path time joined with the most
// saturated underlying resource.
type BottleneckSummary = obs.BottleneckSummary

// Bottlenecks joins every completed invocation's critical path with
// resource saturation and aggregates per (workflow, mode).
func (o *Observer) Bottlenecks() ([]BottleneckSummary, error) {
	ibs, err := obs.AttributeBottlenecks(o.log, nil)
	if err != nil {
		return nil, err
	}
	return obs.SummarizeBottlenecks(ibs), nil
}

// Snapshot is a flight-recorder artifact: the full event log, per-workflow
// latency statistics, and utilization summaries as versioned JSON. Two
// identical runs produce byte-identical snapshots.
type Snapshot = obs.Snapshot

// Snapshot captures everything observed so far. meta carries caller labels
// (system, benchmark, commit); keep wall-clock values out of it when
// byte-identical reruns matter.
func (o *Observer) Snapshot(meta map[string]string) *Snapshot {
	return obs.BuildSnapshot(o.log, meta)
}

// LoadSnapshot reads a snapshot file written with Snapshot.Marshal.
func LoadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return obs.ParseSnapshot(data)
}

// SnapshotDiff is a run-to-run comparison: per-(workflow, mode) latency
// percentile deltas with Regressions/Improvements totals; String() renders
// the table.
type SnapshotDiff = obs.DiffResult

// DiffSnapshots compares two snapshots with default noise thresholds (2%
// relative, 1ms absolute). Use obs.Diff directly for custom thresholds.
func DiffSnapshots(oldS, newS *Snapshot) *SnapshotDiff {
	return obs.Diff(oldS, newS, obs.DiffOptions{})
}
