package faasflow

import (
	"time"

	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/sim"
)

// This file is the public fault-injection and recovery surface: schedule
// deterministic failures (node deaths, link degradation, storage outages)
// against a cluster, deploy workflows with the recovery layer enabled, and
// read back failure/recovery counters.

// FaultKind classifies an injected failure.
type FaultKind int

const (
	// NodeDown kills a worker for the fault window: containers destroyed,
	// in-flight work lost, warm pools gone until recovery.
	NodeDown FaultKind = iota
	// LinkDegraded scales a node's access-link capacity by Factor for the
	// window; Factor 0 partitions the node entirely.
	LinkDegraded
	// StoreOutage makes remote storage unavailable for the window; pending
	// operations queue and drain in order on recovery.
	StoreOutage
	// EngineDown crashes every deployed workflow engine for the window:
	// in-flight invocations orphan, the journal tears at the crash instant,
	// and restart replays committed steps (see DeployDurable). Node is
	// unused.
	EngineDown
)

// Fault is one scheduled failure window, relative to injection time.
type Fault struct {
	Kind     FaultKind
	Node     string        // target worker (NodeDown, LinkDegraded)
	At       time.Duration // failure instant
	Duration time.Duration // recovery happens at At+Duration; <=0 is permanent
	Factor   float64       // LinkDegraded capacity multiplier in [0,1]
}

// FaultSchedule is a set of fault windows applied independently.
type FaultSchedule []Fault

func (s FaultSchedule) internal() faults.Schedule {
	out := make(faults.Schedule, len(s))
	for i, f := range s {
		out[i] = faults.Fault{
			Kind:     faults.Kind(f.Kind),
			Node:     f.Node,
			At:       f.At,
			Duration: f.Duration,
			Factor:   f.Factor,
		}
	}
	return out
}

// InjectFaults validates the schedule against the cluster topology and arms
// every fault on the simulation clock. Faults fire during subsequent Run
// calls; apps deployed with recovery options re-place and re-issue the
// affected work.
func (c *Cluster) InjectFaults(s FaultSchedule) error {
	inj := faults.NewInjector(c.tb.Env, c.tb.Runtime.Nodes, c.tb.Fabric,
		c.tb.Runtime.Store, c.tb.Bus())
	// EngineDown faults target every engine deployed so far; deploy durable
	// apps before injecting them.
	for _, eng := range c.tb.Engines() {
		inj.AttachEngines(eng)
	}
	return inj.Install(s.internal())
}

// Workers lists the cluster's worker node IDs, in testbed order — fault
// schedule targets.
func (c *Cluster) Workers() []string {
	return append([]string(nil), c.tb.Workers...)
}

// RandomNodeKills builds a deterministic schedule of n worker deaths drawn
// from the seed: victims and instants are reproducible, with kills landing
// mid-window and outages lasting between minDown and maxDown.
func RandomNodeKills(seed uint64, workers []string, n int, window, minDown, maxDown time.Duration) FaultSchedule {
	internal := faults.RandomNodeKills(sim.NewRand(seed), workers, n, window, minDown, maxDown)
	out := make(FaultSchedule, len(internal))
	for i, f := range internal {
		out[i] = Fault{
			Kind:     FaultKind(f.Kind),
			Node:     f.Node,
			At:       f.At,
			Duration: f.Duration,
			Factor:   f.Factor,
		}
	}
	return out
}

// Recovery tunes the engine's fault-recovery layer for a deployment. Zero
// values take defaults; the zero struct enables recovery with a 30 s task
// timeout.
type Recovery struct {
	// TaskTimeout bounds one executor attempt end-to-end; a stranded
	// attempt is abandoned and re-issued when it expires. It must exceed
	// the longest healthy task's container wait + data movement + execution
	// or healthy work gets re-issued (default 30 s).
	TaskTimeout time.Duration
	// BackoffBase is the first re-issue backoff, doubling per failure up to
	// BackoffMax (default 200 ms base, 5 s cap).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// MaxReissues bounds fault-driven re-issues per task before the
	// invocation is marked failed (default 8).
	MaxReissues int
}

// DeployWithRecovery is Deploy with the fault-recovery layer enabled:
// tasks time out and re-issue, and tasks stranded on dead nodes are
// re-placed onto surviving workers (MasterSP re-issues from the master;
// WorkerSP re-issues from the task's predecessor worker).
func (c *Cluster) DeployWithRecovery(wf *Workflow, mode Mode, rec Recovery) (*App, error) {
	if rec.TaskTimeout == 0 {
		rec.TaskTimeout = 30 * time.Second
	}
	if rec.BackoffBase == 0 {
		rec.BackoffBase = 200 * time.Millisecond
	}
	if rec.BackoffMax == 0 {
		rec.BackoffMax = 5 * time.Second
	}
	m := engine.ModeWorkerSP
	if mode == MasterSP {
		m = engine.ModeMasterSP
	}
	opts := engine.Options{
		Mode:        m,
		Data:        engine.DataStore,
		TaskTimeout: rec.TaskTimeout,
		BackoffBase: rec.BackoffBase,
		BackoffMax:  rec.BackoffMax,
		MaxReissues: rec.MaxReissues,
	}
	dep, err := c.tb.Deploy(wf.bench, opts)
	if err != nil {
		return nil, err
	}
	return &App{cluster: c, dep: dep, opts: opts}, nil
}

// FailureStats aggregates an app's failure and recovery counters.
type FailureStats = engine.FailureStats

// FailureStats reports the app's crash, timeout, re-issue, and re-placement
// counters so far. Federated apps aggregate across every member engine
// (with Exhausted the sorted cross-member union).
func (a *App) FailureStats() FailureStats {
	if a.fed == nil {
		return a.dep.Engine.FailureStatsSnapshot()
	}
	var out FailureStats
	for _, id := range a.fed.MemberIDs() {
		st := a.fed.Engine(id).FailureStatsSnapshot()
		out.Crashes += st.Crashes
		out.Retries += st.Retries
		out.Timeouts += st.Timeouts
		out.Reissues += st.Reissues
		out.Replacements += st.Replacements
		out.FailedInvocations += st.FailedInvocations
		out.DeadlineExceeded += st.DeadlineExceeded
		out.Shed += st.Shed
		out.ReissuesExhausted += st.ReissuesExhausted
	}
	out.Exhausted = a.fed.ExhaustionFailures()
	return out
}
