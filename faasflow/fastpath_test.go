package faasflow

import "testing"

func TestDeployFastBeatsBaseline(t *testing.T) {
	wf := Benchmark("Vid")
	base := NewCluster(WithSeed(1))
	appBase, err := base.Deploy(wf, WorkerSP)
	if err != nil {
		t.Fatal(err)
	}
	fast := NewCluster(WithSeed(1))
	appFast, err := fast.DeployFast(wf, WorkerSP, FastPath{DirectPassing: true, Prewarm: true})
	if err != nil {
		t.Fatal(err)
	}
	sb := appBase.Run(10)
	sf := appFast.Run(10)
	if sf.Mean > sb.Mean {
		t.Fatalf("fast path regressed: mean %v > baseline %v", sf.Mean, sb.Mean)
	}
	st := appFast.FastPathStats()
	if st.DirectPushes == 0 {
		t.Fatalf("no direct pushes: %+v", st)
	}
	if st.PrewarmIssued == 0 {
		t.Fatalf("no prewarm slots issued: %+v", st)
	}
	if ds := fast.DirectPassingStats(); ds.Pushes == 0 || ds.BytesPushed == 0 {
		t.Fatalf("store-level direct stats empty: %+v", ds)
	}
	if !appFast.FastPath().Enabled() {
		t.Fatal("FastPath() lost the deploy options")
	}
	if appBase.FastPath().Enabled() {
		t.Fatal("plain deploy reports fast path enabled")
	}
}

func TestDeployDurableWithMemoization(t *testing.T) {
	c := NewCluster(WithSeed(2))
	app, err := c.DeployDurable(Benchmark("Vid"), WorkerSP, Durability{
		FastPath: FastPath{Memoize: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := app.Run(4); st.Count != 4 {
		t.Fatalf("completed %d/4", st.Count)
	}
	st := app.FastPathStats()
	if st.MemoHits == 0 {
		t.Fatalf("no memo hits across repeated invocations: %+v", st)
	}
	// Memo hits must still commit journal records: replay depends on them.
	ds := app.DurableStats()
	if ds.Journal.Committed == 0 {
		t.Fatal("durable fast-path app committed nothing")
	}
	if ds.Journal.DupDrops != 0 {
		t.Fatalf("journal dropped %d duplicate commits", ds.Journal.DupDrops)
	}
}
