package faasflow

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestSetAdmissionValidates(t *testing.T) {
	c := NewCluster()
	if err := c.SetAdmission(AdmissionConfig{RatePerSec: -1}); err == nil {
		t.Fatal("negative rate accepted")
	}
	if err := c.SetAdmission(AdmissionConfig{MaxConcurrent: -1}); err == nil {
		t.Fatal("negative concurrency cap accepted")
	}
	if err := c.SetAdmission(AdmissionConfig{RatePerSec: 10, MaxConcurrent: 4}); err != nil {
		t.Fatal(err)
	}
}

func TestAdmitWithoutControllerAdmitsEverything(t *testing.T) {
	c := NewCluster()
	for i := 0; i < 100; i++ {
		release, err := c.Admit("wf")
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		release()
	}
	if st := c.AdmissionStats(); st != (AdmissionStats{}) {
		t.Fatalf("stats without controller = %+v", st)
	}
}

func TestAdmitRejectsOverConcurrency(t *testing.T) {
	c := NewCluster()
	if err := c.SetAdmission(AdmissionConfig{MaxConcurrent: 2}); err != nil {
		t.Fatal(err)
	}
	r1, err1 := c.Admit("wf")
	_, err2 := c.Admit("wf")
	if err1 != nil || err2 != nil {
		t.Fatalf("first two admits failed: %v, %v", err1, err2)
	}
	_, err3 := c.Admit("wf")
	if err3 == nil {
		t.Fatal("third admit over cap succeeded")
	}
	if !errors.Is(err3, ErrOverloaded) {
		t.Fatalf("rejection %v does not match ErrOverloaded", err3)
	}
	var oe *OverloadError
	if !errors.As(err3, &oe) {
		t.Fatalf("rejection %T is not *OverloadError", err3)
	}
	if oe.Reason != "concurrency" || oe.RetryAfter <= 0 {
		t.Fatalf("rejection = %+v", oe)
	}
	if !strings.Contains(oe.Error(), "concurrency") {
		t.Fatalf("error text %q", oe.Error())
	}
	// Releasing one slot reopens the door.
	r1()
	r4, err4 := c.Admit("wf")
	if err4 != nil {
		t.Fatalf("admit after release: %v", err4)
	}
	r4()
	st := c.AdmissionStats()
	if st.Admitted != 3 || st.RejectedConcurrency != 1 || st.Rejected() != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRunAdmittedAccountsEveryArrival(t *testing.T) {
	c := NewCluster(WithSeed(7))
	if err := c.SetAdmission(AdmissionConfig{RatePerSec: 0.5, MaxConcurrent: 4}); err != nil {
		t.Fatal(err)
	}
	app, err := c.Deploy(Benchmark("IR"), WorkerSP)
	if err != nil {
		t.Fatal(err)
	}
	// 10x the admitted rate: most arrivals must be turned away, the rest
	// finish inside the deadline.
	st := app.RunAdmitted(300, 40, 30*time.Second)
	if st.Offered != 40 {
		t.Fatalf("offered = %d", st.Offered)
	}
	if st.Admitted+st.Rejected != st.Offered {
		t.Fatalf("admitted %d + rejected %d != offered %d", st.Admitted, st.Rejected, st.Offered)
	}
	if st.Rejected == 0 {
		t.Fatal("10x overload rejected nothing")
	}
	if st.Goodput+st.Deadlined+st.Failed != st.Admitted {
		t.Fatalf("outcomes %d+%d+%d != admitted %d", st.Goodput, st.Deadlined, st.Failed, st.Admitted)
	}
	if st.Goodput == 0 {
		t.Fatal("no goodput at all")
	}
	if st.Count != st.Goodput {
		t.Fatalf("latency samples %d != goodput %d", st.Count, st.Goodput)
	}
	if st.P99 > 30*time.Second {
		t.Fatalf("goodput P99 %v exceeds the deadline", st.P99)
	}
}

func TestRunAdmittedDeadlineBoundsResidency(t *testing.T) {
	c := NewCluster(WithSeed(7))
	app, err := c.Deploy(Benchmark("IR"), WorkerSP)
	if err != nil {
		t.Fatal(err)
	}
	// No admission, saturating arrivals, and a deadline shorter than the
	// queueing delay this load builds: late arrivals must be cut off rather
	// than run to completion long after their budget.
	st := app.RunAdmitted(1200, 120, 4*time.Second)
	if st.Rejected != 0 {
		t.Fatalf("no controller installed but %d rejected", st.Rejected)
	}
	if st.Deadlined == 0 {
		t.Fatal("saturating load with a tight deadline deadlined nothing")
	}
	if st.Goodput+st.Deadlined+st.Failed != st.Admitted {
		t.Fatalf("outcomes %d+%d+%d != admitted %d", st.Goodput, st.Deadlined, st.Failed, st.Admitted)
	}
}
