package faasflow

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestRunAdmittedNeverLeaksSlots is the Admit/Release pairing regression:
// after an open-loop run where arrivals are rejected, deadlined, and
// completed, every admitted workflow must have returned its slot.
func TestRunAdmittedNeverLeaksSlots(t *testing.T) {
	c := NewCluster(WithSeed(7))
	if err := c.SetAdmission(AdmissionConfig{RatePerSec: 0.5, MaxConcurrent: 4}); err != nil {
		t.Fatal(err)
	}
	app, err := c.Deploy(Benchmark("IR"), WorkerSP)
	if err != nil {
		t.Fatal(err)
	}
	st := app.RunAdmitted(300, 40, 2*time.Second)
	if st.Admitted == 0 || st.Rejected == 0 {
		t.Fatalf("test load not mixed: %+v", st)
	}
	if live := c.AdmissionLive(); live != 0 {
		t.Fatalf("AdmissionLive = %d after the run, want 0 (leaked slots)", live)
	}
}

// TestTenantAdmissionRoundTrip drives tenant-attributed runs through the
// public surface: SetAdmission with tenants, AdmitTenant + RunOpts per
// batch, and per-tenant stats afterwards — with no slot leaked.
func TestTenantAdmissionRoundTrip(t *testing.T) {
	c := NewCluster(WithSeed(7))
	err := c.SetAdmission(AdmissionConfig{
		RatePerSec:    100,
		MaxConcurrent: 8,
		Tenants: map[string]TenantConfig{
			"gold":   {Weight: 3},
			"bronze": {Weight: 1, RatePerSec: 1, Burst: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	app, err := c.Deploy(Benchmark("IR"), WorkerSP)
	if err != nil {
		t.Fatal(err)
	}
	release, err := c.AdmitTenant("IR", "gold")
	if err != nil {
		t.Fatal(err)
	}
	st := app.RunOpts(InvokeOptions{Tenant: "gold"}, 2)
	release()
	if st.Count != 2 {
		t.Fatalf("RunOpts stats = %+v, want 2 completions", st)
	}
	// bronze's burst-1 bucket rejects its second immediate request.
	r1, err := c.AdmitTenant("IR", "bronze")
	if err != nil {
		t.Fatal(err)
	}
	r1()
	_, err = c.AdmitTenant("IR", "bronze")
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("bronze over-rate admit = %v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != "tenant-rate" || oe.Tenant != "bronze" {
		t.Fatalf("rejection = %+v, want tenant-rate for bronze", err)
	}
	if live := c.AdmissionLive(); live != 0 {
		t.Fatalf("AdmissionLive = %d, want 0", live)
	}
	var gold, bronze TenantAdmissionStats
	for _, s := range c.TenantAdmissionStats() {
		switch s.Tenant {
		case "gold":
			gold = s
		case "bronze":
			bronze = s
		}
	}
	if gold.Admitted != 1 || gold.Released != 1 || gold.Weight != 3 {
		t.Fatalf("gold stats = %+v", gold)
	}
	if bronze.Admitted != 1 || bronze.RejectedRate != 1 {
		t.Fatalf("bronze stats = %+v", bronze)
	}
	// Queue-side tenancy surfaced too: the tenanted RunOpts invocations
	// left per-tenant grant counters on the worker nodes.
	grants := int64(0)
	for _, q := range c.TenantQueueStats() {
		if q.Tenant == "gold" {
			grants += q.Grants
		}
	}
	if grants == 0 {
		t.Fatal("no tenant-attributed container grants recorded")
	}
}

// TestOverloadErrorSurvivesWrapping pins the satellite contract: a
// rejection wrapped by intermediate layers (as the gateway does with
// fmt.Errorf) still matches ErrOverloaded via errors.Is and recovers the
// typed *OverloadError via errors.As.
func TestOverloadErrorSurvivesWrapping(t *testing.T) {
	c := NewCluster()
	if err := c.SetAdmission(AdmissionConfig{
		Tenants: map[string]TenantConfig{"t": {MaxConcurrent: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AdmitTenant("wf", "t"); err != nil {
		t.Fatal(err)
	}
	_, err := c.AdmitTenant("wf", "t")
	if err == nil {
		t.Fatal("over-cap admit succeeded")
	}
	wrapped := fmt.Errorf("gateway: invoking workflow: %w", fmt.Errorf("dispatch: %w", err))
	if !errors.Is(wrapped, ErrOverloaded) {
		t.Fatalf("errors.Is failed through two wraps: %v", wrapped)
	}
	var oe *OverloadError
	if !errors.As(wrapped, &oe) {
		t.Fatalf("errors.As failed through two wraps: %v", wrapped)
	}
	if oe.Reason != "tenant-concurrency" || oe.Tenant != "t" {
		t.Fatalf("recovered error = %+v", oe)
	}
}
