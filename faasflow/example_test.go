package faasflow_test

import (
	"fmt"

	"repro/faasflow"
)

// Build a workflow programmatically, deploy it with FaaStore, and inspect
// the scheduler's work. Every run is deterministic, so the output is too.
func Example() {
	wf, err := faasflow.NewWorkflow("etl").
		Function("extract", 0.2, 64<<20).
		Function("load", 0.1, 32<<20).
		Task("extract-step", "extract", 4<<20).
		Task("load-step", "load", 0).
		Pipe("extract-step", "load-step").
		Build()
	if err != nil {
		panic(err)
	}
	cluster := faasflow.NewCluster(faasflow.WithFaaStore(true), faasflow.WithSeed(1))
	app, err := cluster.Deploy(wf, faasflow.WorkerSP)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d tasks in %d group(s), %.0f%% of payload local\n",
		wf.Tasks(), app.Groups(), app.LocalizedFraction()*100)
	// Output:
	// 2 tasks in 1 group(s), 100% of payload local
}

// Compile a workflow from the paper's Workflow Definition Language.
func ExampleWorkflowFromWDL() {
	src := `
name: thumbnails
steps:
  - name: fetch
    function: fetch
    output: 2097152
  - name: resize
    type: foreach
    width: 3
    steps:
      - name: scale
        function: scale
        output: 524288
  - name: publish
    function: publish
`
	wf, err := faasflow.WorkflowFromWDL(src, map[string]faasflow.FunctionSpec{
		"fetch":   {ExecSeconds: 0.1},
		"scale":   {ExecSeconds: 0.4},
		"publish": {ExecSeconds: 0.1},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(wf.Name(), wf.Tasks())
	// Output:
	// thumbnails 3
}

// The eight workloads of the paper's evaluation ship with the library.
func ExampleBenchmarks() {
	for _, wf := range faasflow.Benchmarks() {
		fmt.Printf("%s: %d tasks\n", wf.Name(), wf.Tasks())
	}
	// Output:
	// Cyc: 50 tasks
	// Epi: 50 tasks
	// Gen: 50 tasks
	// Soy: 50 tasks
	// Vid: 10 tasks
	// IR: 6 tasks
	// FP: 5 tasks
	// WC: 14 tasks
}

// Snapshots of identical runs are byte-identical, so a diff between them
// is always clean — the property the CI regression gate relies on.
func ExampleDiffSnapshots() {
	capture := func() *faasflow.Snapshot {
		cluster := faasflow.NewCluster(faasflow.WithSeed(1))
		o := faasflow.NewObserver()
		cluster.AttachObserver(o)
		app, err := cluster.Deploy(faasflow.Benchmark("FP"), faasflow.WorkerSP)
		if err != nil {
			panic(err)
		}
		app.Run(5)
		return o.Snapshot(map[string]string{"system": "WorkerSP"})
	}
	diff := faasflow.DiffSnapshots(capture(), capture())
	fmt.Printf("regressions: %d\n", diff.Regressions)
	// Output:
	// regressions: 0
}

// Switch steps route per invocation when arguments are supplied.
func ExampleApp_RunWithArgs() {
	src := `
name: router
steps:
  - name: ingest
    function: ingest
  - name: pick
    type: switch
    choices:
      - condition: "$tier == 'premium'"
        steps:
          - name: full
            function: full
      - steps:
          - name: lite
            function: lite
`
	wf, err := faasflow.WorkflowFromWDL(src, map[string]faasflow.FunctionSpec{
		"ingest": {ExecSeconds: 0.05},
		"full":   {ExecSeconds: 2.0},
		"lite":   {ExecSeconds: 0.1},
	})
	if err != nil {
		panic(err)
	}
	app, err := faasflow.NewCluster(faasflow.WithSeed(1)).Deploy(wf, faasflow.WorkerSP)
	if err != nil {
		panic(err)
	}
	premium := app.RunWithArgs(map[string]any{"tier": "premium"}, 3)
	free := app.RunWithArgs(map[string]any{"tier": "free"}, 3)
	fmt.Println(premium.Mean > free.Mean)
	// Output:
	// true
}
