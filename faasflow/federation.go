package faasflow

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/federation"
	"repro/internal/harness"
	"repro/internal/journal"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// This file is the public engine-federation surface: deploy a workflow
// behind N member engines that shard invocation ownership by consistent
// hashing, renew leases as a failure detector, and — when a lease expires
// — fence the old owner by epoch, hand its journal to a successor, and
// resume the claimed invocations by replay (committed steps skipped,
// the uncommitted cut re-dispatched exactly once).

// FederationOptions tunes a federated deployment. Zero values take the
// defaults noted per field.
type FederationOptions struct {
	// Members is the number of member engines (default 3). Every member is
	// a full control-plane replica over the same scheduled placement; the
	// worker fleet and FaaStore quota are shared, not multiplied.
	Members int
	// Shards is the consistent-hash space invocations map onto (default 16).
	Shards int
	// LeaseTTL is how long a member lease lives without renewal (default
	// 2s); expiry is the failure detector, so a stall longer than the TTL
	// is indistinguishable from a crash until fencing resolves it.
	LeaseTTL time.Duration
	// RenewEvery is the members' lease-renewal period (default LeaseTTL/4).
	RenewEvery time.Duration
	// CheckEvery is the expiry-sweep period (default LeaseTTL/4); the
	// claim race between surviving members is decided by seed-derived
	// per-member sweep jitter, deterministically.
	CheckEvery time.Duration
	// HandoffDelay is the window after a claim during which the claimed
	// shards reject new invocations (HandoffError / HTTP 503 + Retry-After)
	// while the journal replay runs (default 250ms).
	HandoffDelay time.Duration
	// Seed drives the claim-race jitter (default: cluster seed + 1).
	Seed uint64
	// Durability tunes each member's journal and recovery layer, exactly
	// as in DeployDurable; every member gets its OWN journal — handoff
	// replays read the union view across members.
	Durability Durability
}

// FederationStats is the federation's counter set: epochs, lease
// renewals/expiries, shard claims, handoff adoptions, fenced operations,
// and the per-member breakdown.
type FederationStats = federation.Stats

// FederationMemberStats is one member's row in FederationStats.
type FederationMemberStats = federation.MemberStats

// HandoffError is the typed rejection for an invocation routed to a shard
// that is mid-handoff; RetryAfter says when the replay window closes. The
// gateway maps it to HTTP 503 + Retry-After.
type HandoffError = federation.HandoffError

// ExhaustionRecord identifies a step that burned its whole re-issue
// budget: workflow, invocation, step name, and attempt count. It is also
// a typed error (errors.As against *ExhaustionRecord).
type ExhaustionRecord = engine.ErrReissuesExhausted

// DeployFederated deploys the workflow behind a sharded engine federation:
// Members durable engines share ownership of the invocation space, and a
// member crash (KillFederationMember, or an injected EngineKill fault)
// triggers lease expiry, an epoch-fenced shard claim by a survivor, and a
// journal handoff that resumes the dead member's invocations by replay.
// Determinism holds end to end: the same seed reproduces the same claim
// winners, fences, and replays.
func (c *Cluster) DeployFederated(wf *Workflow, mode Mode, fo FederationOptions) (*App, error) {
	members := fo.Members
	if members == 0 {
		members = 3
	}
	if members < 0 {
		return nil, fmt.Errorf("faasflow: federation needs members > 0, got %d", members)
	}
	rec := fo.Durability.Recovery
	if rec.TaskTimeout == 0 {
		rec.TaskTimeout = 30 * time.Second
	}
	if rec.BackoffBase == 0 {
		rec.BackoffBase = 200 * time.Millisecond
	}
	if rec.BackoffMax == 0 {
		rec.BackoffMax = 5 * time.Second
	}
	m := engine.ModeWorkerSP
	if mode == MasterSP {
		m = engine.ModeMasterSP
	}
	if fo.Durability.ReplicationFactor > 1 {
		c.tb.Runtime.Store.SetReplication(fo.Durability.ReplicationFactor, fo.Durability.RepairInterval)
		nodes := c.tb.Runtime.Nodes
		c.tb.Runtime.Store.SetAlive(func(n string) bool {
			node := nodes[n]
			return node == nil || !node.Failed()
		})
	}
	var opts0 engine.Options
	deps, err := c.tb.DeployReplicas(wf.bench, members, func(i int) engine.Options {
		opts := engine.Options{
			Mode: m,
			Data: engine.DataStore,
			Journal: journal.New(c.tb.Env, journal.Config{
				SyncLatency: fo.Durability.SyncLatency,
				BatchWindow: fo.Durability.BatchWindow,
			}),
			TaskTimeout: rec.TaskTimeout,
			BackoffBase: rec.BackoffBase,
			BackoffMax:  rec.BackoffMax,
			MaxReissues: rec.MaxReissues,
			FastPath:    fo.Durability.FastPath,
		}
		if i == 0 {
			opts0 = opts
		}
		return opts
	})
	if err != nil {
		return nil, err
	}
	fedMembers := make([]federation.Member, len(deps))
	for i, d := range deps {
		fedMembers[i] = federation.Member{
			ID:      fmt.Sprintf("engine-%d", i),
			Engine:  d.Engine,
			Journal: d.Engine.Journal(),
		}
	}
	seed := fo.Seed
	if seed == 0 {
		seed = c.tb.Spec.Seed + 1
	}
	fed, err := federation.New(c.tb.Env, federation.Config{
		Shards:       fo.Shards,
		LeaseTTL:     fo.LeaseTTL,
		RenewEvery:   fo.RenewEvery,
		CheckEvery:   fo.CheckEvery,
		HandoffDelay: fo.HandoffDelay,
		Seed:         seed,
	}, c.tb.Bus(), fedMembers...)
	if err != nil {
		return nil, err
	}
	return &App{cluster: c, dep: deps[0], opts: opts0, fed: fed}, nil
}

// Federated reports whether the app was deployed behind a federation.
func (a *App) Federated() bool { return a.fed != nil }

// FederationStats reports the federation's counters (zero value for
// non-federated apps).
func (a *App) FederationStats() FederationStats {
	if a.fed == nil {
		return FederationStats{}
	}
	return a.fed.Stats()
}

// FederationMembers lists the member engine IDs, sorted.
func (a *App) FederationMembers() []string {
	if a.fed == nil {
		return nil
	}
	return a.fed.MemberIDs()
}

// HandoffPending reports whether any shard is inside its handoff window,
// and how long until the last window closes. Always false for
// non-federated apps.
func (a *App) HandoffPending() (time.Duration, bool) {
	if a.fed == nil {
		return 0, false
	}
	return a.fed.HandoffPending()
}

// KillFederationMember crashes a member engine: its journal tears at the
// crash instant, its lease stops renewing, and once the lease expires a
// survivor claims its shards and resumes its invocations by replay.
func (a *App) KillFederationMember(id string) error {
	if a.fed == nil {
		return fmt.Errorf("faasflow: workflow was not deployed federated")
	}
	return a.fed.KillEngine(id)
}

// RestartFederationMember brings a killed member back: it re-acquires a
// lease at the current epoch and becomes claimable shard ownership again.
// Its pre-crash invocations stay with whoever claimed them.
func (a *App) RestartFederationMember(id string) error {
	if a.fed == nil {
		return fmt.Errorf("faasflow: workflow was not deployed federated")
	}
	return a.fed.RestartEngine(id)
}

// StallFederationMember pauses a member's lease renewals for d without
// killing it — the failure-detector false positive. Its lease expires, a
// peer claims its shards, and the stale member's in-flight dispatches are
// rejected by epoch fencing rather than executed twice.
func (a *App) StallFederationMember(id string, d time.Duration) error {
	if a.fed == nil {
		return fmt.Errorf("faasflow: workflow was not deployed federated")
	}
	return a.fed.StallEngine(id, d)
}

// ExhaustionFailures lists every step that burned its entire re-issue
// budget, across all federation members for federated apps, sorted by
// invocation then step.
func (a *App) ExhaustionFailures() []ExhaustionRecord {
	if a.fed != nil {
		return a.fed.ExhaustionFailures()
	}
	return a.dep.Engine.FailureStatsSnapshot().Exhausted
}

// RunFederated sends n closed-loop invocations through the federation's
// shard router. Invocations that land on a mid-handoff shard retry
// automatically after the window closes (the wait counts toward client
// latency). It returns an error when the run cannot finish — every member
// dead, or the batch not draining within the deadline.
func (a *App) RunFederated(n int) (Stats, error) {
	if a.fed == nil {
		return Stats{}, fmt.Errorf("faasflow: workflow was not deployed federated")
	}
	env := a.cluster.tb.Env
	rec := &metrics.Recorder{}
	completed := 0
	var invokeErr error
	var launch func()
	launch = func() {
		if n <= 0 {
			return
		}
		n--
		start := env.Now()
		var submit func()
		submit = func() {
			_, err := a.fed.Invoke(engine.InvokeOptions{}, func(engine.Result) {
				rec.Add((env.Now() - start).Duration())
				completed++
				launch()
			})
			if err != nil {
				var he *HandoffError
				if errors.As(err, &he) {
					env.Schedule(he.RetryAfter, submit)
					return
				}
				invokeErr = err
				completed++
				launch()
			}
		}
		submit()
	}
	total := n
	launch()
	// The federation's renewal and sweep timers reschedule forever, so a
	// bare env.Run() would never drain; step the clock until the batch
	// completes (or a generous deadline passes).
	deadline := env.Now() + sim.Time(time.Duration(total)*harness.Timeout+time.Minute)
	for completed < total && env.Now() < deadline {
		env.RunUntil(env.Now() + sim.Time(100*time.Millisecond))
	}
	if invokeErr != nil {
		return statsOf(rec), invokeErr
	}
	if completed < total {
		return statsOf(rec), fmt.Errorf("faasflow: federated run stalled: %d/%d invocations completed", completed, total)
	}
	return statsOf(rec), nil
}

// Advance runs the simulation clock forward by d even with no client work
// pending, so lease renewals, expiry sweeps, and handoff replays progress
// — the time-control knob behind the gateway's federation admin actions.
func (c *Cluster) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.tb.Env.RunUntil(c.tb.Env.Now() + sim.Time(d))
}
