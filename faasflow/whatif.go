package faasflow

import (
	"repro/internal/whatif"
)

// This file surfaces the causal what-if profiler (internal/whatif): exact
// counterfactual re-simulation of a deployed app's scenario with one cost
// dimension virtually scaled. Because the simulator is deterministic, "what
// would latency be if X were twice as fast" has an exact answer — the
// counterfactual is simply executed on a fresh replica of the cluster, with
// placement inputs untouched so only the dimension's causal contribution
// moves.

// Dimension identifies one virtually-scalable cost source: DimExec,
// DimColdStart, DimNetwork, DimStore, or DimControl.
type Dimension = whatif.Dimension

// The scalable cost dimensions.
const (
	DimExec      = whatif.DimExec
	DimColdStart = whatif.DimColdStart
	DimNetwork   = whatif.DimNetwork
	DimStore     = whatif.DimStore
	DimControl   = whatif.DimControl
)

// Perturbation is one counterfactual: scale Dim's cost by Factor (1 =
// baseline, 0.5 = half, 0 = free). Function restricts DimExec to a single
// function.
type Perturbation = whatif.Perturbation

// WhatIfResult is one counterfactual run's exact measurements.
type WhatIfResult = whatif.RunResult

// CausalProfile is the full virtual-speedup sweep artifact: a baseline plus
// one speedup curve per dimension. Marshal is deterministic — same app,
// same n, byte-identical bytes.
type CausalProfile = whatif.Profile

// Explanation is the ranked causal report: dimensions ordered by measured
// ×0.5 gain, each validated against its breakdown-based prediction and
// joined with utilization evidence. String() renders it for terminals.
type Explanation = whatif.Explanation

// scenario reconstructs the app's deployment as a replayable what-if
// scenario: same workload, same cluster spec (and thus the same placement
// seed), same engine options. The counterfactual runs on a fresh testbed so
// the live app's state is never perturbed.
func (a *App) scenario(n int) whatif.Scenario {
	return whatif.Scenario{
		Bench: a.dep.Bench,
		Spec:  a.cluster.tb.Spec,
		Opts:  a.opts,
		N:     n,
	}
}

// WhatIf answers "what would this app's latency be if p.Dim were p.Factor×
// as expensive" by re-executing the app's exact scenario — n closed-loop
// invocations — with the dimension virtually scaled. A nil perturbation
// measures the baseline.
func (a *App) WhatIf(p *Perturbation, n int) (*WhatIfResult, error) {
	return whatif.Run(a.scenario(n), p)
}

// CausalProfile sweeps every dimension through the standard speedup ladder
// (×0.75, ×0.5, ×0.25, ×0) over n invocations each and returns the full
// profile.
func (a *App) CausalProfile(n int) (*CausalProfile, error) {
	return whatif.Sweep(a.scenario(n), nil)
}

// Explain produces the ranked "optimize X first, worth Y%" report for this
// app over n invocations per counterfactual, validating every prediction
// against the measured ×0.5 counterfactual (within whatif.DefaultTolerance
// of the baseline mean; disagreements are flagged, never suppressed).
func (a *App) Explain(n int) (*Explanation, error) {
	return whatif.Explain(a.scenario(n), nil, 0)
}
