package faasflow

import (
	"strings"
	"testing"
	"time"
)

func buildPipeline(t *testing.T) *Workflow {
	t.Helper()
	wf, err := NewWorkflow("pipeline").
		Function("extract", 0.2, 64<<20).
		Function("transform", 0.3, 96<<20).
		Function("load", 0.1, 32<<20).
		Task("extract-step", "extract", 4<<20).
		Task("transform-step", "transform", 2<<20).
		Task("load-step", "load", 0).
		Pipe("extract-step", "transform-step").
		Pipe("transform-step", "load-step").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return wf
}

func TestBuilderHappyPath(t *testing.T) {
	wf := buildPipeline(t)
	if wf.Name() != "pipeline" || wf.Tasks() != 3 {
		t.Fatalf("wf = %s with %d tasks", wf.Name(), wf.Tasks())
	}
	if wf.TotalBytes() != 6<<20 {
		t.Fatalf("TotalBytes = %d", wf.TotalBytes())
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*Workflow, error)
		want  string
	}{
		{"bad exec", func() (*Workflow, error) {
			return NewWorkflow("x").Function("f", 0, 1).Build()
		}, "non-positive"},
		{"dup step", func() (*Workflow, error) {
			return NewWorkflow("x").Function("f", 1, 1).
				Task("a", "f", 0).Task("a", "f", 0).Build()
		}, "duplicate step"},
		{"unknown pipe", func() (*Workflow, error) {
			return NewWorkflow("x").Function("f", 1, 1).
				Task("a", "f", 0).Pipe("a", "ghost").Build()
		}, "unknown step"},
		{"unknown function", func() (*Workflow, error) {
			return NewWorkflow("x").Task("a", "nope", 0).Build()
		}, "unknown function"},
		{"negative output", func() (*Workflow, error) {
			return NewWorkflow("x").Function("f", 1, 1).Task("a", "f", -1).Build()
		}, "negative output"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.build()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestDeployAndRun(t *testing.T) {
	wf := buildPipeline(t)
	c := NewCluster(WithWorkers(3), WithFaaStore(true), WithSeed(1))
	app, err := c.Deploy(wf, WorkerSP)
	if err != nil {
		t.Fatal(err)
	}
	stats := app.Run(10)
	if stats.Count != 10 {
		t.Fatalf("Count = %d", stats.Count)
	}
	if stats.Mean < app.CriticalExec() {
		t.Fatalf("mean %v below critical exec %v", stats.Mean, app.CriticalExec())
	}
	if stats.P99 < stats.P50 || stats.Max < stats.P99 {
		t.Fatalf("percentile ordering broken: %+v", stats)
	}
}

func TestChainLocalizesFully(t *testing.T) {
	wf := buildPipeline(t)
	c := NewCluster(WithFaaStore(true))
	app, err := c.Deploy(wf, WorkerSP)
	if err != nil {
		t.Fatal(err)
	}
	if f := app.LocalizedFraction(); f != 1.0 {
		t.Fatalf("chain locality = %v, want 1.0", f)
	}
	if app.Groups() != 1 {
		t.Fatalf("groups = %d, want 1", app.Groups())
	}
	place := app.Placement()
	if len(place) != 3 {
		t.Fatalf("placement has %d steps", len(place))
	}
	w := place["extract-step"]
	for step, ww := range place {
		if ww != w {
			t.Fatalf("step %s on %s, want all on %s", step, ww, w)
		}
	}
}

func TestWorkerSPFasterThanMasterSP(t *testing.T) {
	run := func(mode Mode) Stats {
		wf := buildPipeline(t)
		c := NewCluster(WithSeed(7))
		app, err := c.Deploy(wf, mode)
		if err != nil {
			t.Fatal(err)
		}
		return app.Run(20)
	}
	w, m := run(WorkerSP), run(MasterSP)
	if w.Mean >= m.Mean {
		t.Fatalf("WorkerSP mean %v >= MasterSP mean %v", w.Mean, m.Mean)
	}
}

func TestOpenLoopStats(t *testing.T) {
	wf := Benchmark("WC")
	c := NewCluster()
	app, err := c.Deploy(wf, WorkerSP)
	if err != nil {
		t.Fatal(err)
	}
	stats := app.RunOpenLoop(30, 20)
	if stats.Count != 20 {
		t.Fatalf("Count = %d", stats.Count)
	}
	if stats.Timeouts < 0 || stats.Timeouts > 1 {
		t.Fatalf("Timeouts = %v", stats.Timeouts)
	}
}

func TestBenchmarksExposed(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 8 {
		t.Fatalf("Benchmarks() = %d", len(bs))
	}
	if Benchmark("Cyc") == nil || Benchmark("nope") != nil {
		t.Fatal("Benchmark lookup broken")
	}
	if Benchmark("Cyc").Tasks() != 50 {
		t.Fatal("Cyc task count wrong")
	}
}

func TestWorkflowFromWDL(t *testing.T) {
	src := `
name: wdlflow
default_output: 1048576
steps:
  - name: a
    function: fa
  - name: fan
    type: parallel
    branches:
      - steps:
          - name: b
            function: fb
      - steps:
          - name: c
            function: fc
  - name: d
    function: fd
`
	fns := map[string]FunctionSpec{
		"fa": {ExecSeconds: 0.1},
		"fb": {ExecSeconds: 0.1},
		"fc": {ExecSeconds: 0.1},
		"fd": {ExecSeconds: 0.1},
	}
	wf, err := WorkflowFromWDL(src, fns)
	if err != nil {
		t.Fatal(err)
	}
	if wf.Tasks() != 4 {
		t.Fatalf("tasks = %d", wf.Tasks())
	}
	c := NewCluster(WithWorkers(2))
	app, err := c.Deploy(wf, WorkerSP)
	if err != nil {
		t.Fatal(err)
	}
	if stats := app.Run(3); stats.Count != 3 {
		t.Fatal("WDL workflow did not run")
	}
}

func TestWorkflowFromWDLMissingFunction(t *testing.T) {
	src := "name: x\nsteps:\n  - name: a\n    function: ghost\n"
	_, err := WorkflowFromWDL(src, map[string]FunctionSpec{})
	if err == nil {
		t.Fatal("missing function spec accepted")
	}
}

func TestWorkflowFromJSON(t *testing.T) {
	src := []byte(`{"name":"j","steps":[{"name":"a","function":"f","output":10}]}`)
	wf, err := WorkflowFromJSON(src, map[string]FunctionSpec{"f": {ExecSeconds: 0.05}})
	if err != nil {
		t.Fatal(err)
	}
	if wf.Tasks() != 1 {
		t.Fatal("JSON workflow wrong shape")
	}
}

func TestRefresh(t *testing.T) {
	wf := Benchmark("Gen")
	c := NewCluster(WithFaaStore(true))
	app, err := c.Deploy(wf, WorkerSP)
	if err != nil {
		t.Fatal(err)
	}
	app.Run(3)
	if err := app.Refresh(); err != nil {
		t.Fatal(err)
	}
	if stats := app.Run(2); stats.Count != 2 {
		t.Fatal("post-refresh run failed")
	}
}

func TestBandwidthOptionMatters(t *testing.T) {
	run := func(bw float64) Stats {
		c := NewCluster(WithFaaStore(false), WithStorageBandwidthMBps(bw))
		app, err := c.Deploy(Benchmark("Vid"), MasterSP)
		if err != nil {
			t.Fatal(err)
		}
		return app.Run(5)
	}
	slow, fast := run(10), run(100)
	if slow.Mean <= fast.Mean {
		t.Fatalf("10MB/s mean %v not above 100MB/s mean %v", slow.Mean, fast.Mean)
	}
}

func TestSwitchRunWithArgs(t *testing.T) {
	src := `
name: quality
steps:
  - name: probe
    function: probe
    output: 1048576
  - name: pick
    type: switch
    choices:
      - condition: "$q > 720"
        steps:
          - name: hd
            function: hd
      - condition: "$q <= 720"
        steps:
          - name: sd
            function: sd
  - name: publish
    function: publish
`
	fns := map[string]FunctionSpec{
		"probe":   {ExecSeconds: 0.05},
		"hd":      {ExecSeconds: 1.0},
		"sd":      {ExecSeconds: 0.1},
		"publish": {ExecSeconds: 0.05},
	}
	wf, err := WorkflowFromWDL(src, fns)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCluster(WithWorkers(2))
	app, err := c.Deploy(wf, WorkerSP)
	if err != nil {
		t.Fatal(err)
	}
	hdStats := app.RunWithArgs(map[string]any{"q": 1080.0}, 5)
	sdStats := app.RunWithArgs(map[string]any{"q": 480.0}, 5)
	if hdStats.Count != 5 || sdStats.Count != 5 {
		t.Fatalf("counts = %d/%d", hdStats.Count, sdStats.Count)
	}
	// The HD branch costs 1.0s of exec; SD only 0.1s. The chosen branch
	// must dominate the latency difference.
	if hdStats.Mean <= sdStats.Mean {
		t.Fatalf("hd mean %v <= sd mean %v; switch not routing", hdStats.Mean, sdStats.Mean)
	}
	if diff := hdStats.Mean - sdStats.Mean; diff < 500*time.Millisecond {
		t.Fatalf("branch latency difference %v too small", diff)
	}
}

func TestModeString(t *testing.T) {
	if WorkerSP.String() != "WorkerSP" || MasterSP.String() != "MasterSP" {
		t.Fatal("mode strings wrong")
	}
}

func TestUtilizationSnapshot(t *testing.T) {
	c := NewCluster(WithFaaStore(true))
	app, err := c.Deploy(Benchmark("Vid"), WorkerSP)
	if err != nil {
		t.Fatal(err)
	}
	app.Run(5)
	u := c.Utilization()
	if u.ColdStarts == 0 || u.WarmReuses == 0 {
		t.Fatalf("container counters empty: %+v", u)
	}
	if u.CPUBusy <= 0 {
		t.Fatal("no CPU busy time recorded")
	}
	if u.StoreLocalHits == 0 {
		t.Fatal("FaaStore saw no local hits for a fully-local workflow")
	}
}

func TestObserverReportAndTrace(t *testing.T) {
	c := NewCluster(WithWorkers(3), WithSeed(7))
	o := NewObserver()
	c.AttachObserver(o)
	wf := Benchmark("Gen")
	if wf == nil {
		t.Fatal("Gen benchmark missing")
	}
	app, err := c.Deploy(wf, WorkerSP)
	if err != nil {
		t.Fatal(err)
	}
	app.Run(3)
	if o.Events() == 0 {
		t.Fatal("attached observer saw nothing")
	}

	bds, err := o.Breakdowns()
	if err != nil {
		t.Fatal(err)
	}
	// Run(3) does one warm-up pass plus 3 measured invocations.
	if len(bds) != 4 {
		t.Fatalf("breakdowns = %d; want 4", len(bds))
	}
	for _, bd := range bds {
		var sum time.Duration
		for _, d := range bd.Components {
			sum += d
		}
		if sum != bd.Total {
			t.Fatalf("component sum %v != total %v", sum, bd.Total)
		}
		if bd.Mode != "WorkerSP" || bd.Workflow != wf.Name() {
			t.Fatalf("breakdown identity = %q/%q", bd.Workflow, bd.Mode)
		}
	}

	rep, err := o.Report()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Count != 4 || rep.MeanTotal <= 0 || rep.Mean["exec"] <= 0 {
		t.Fatalf("report = %+v", rep)
	}
	text, err := o.ReportText()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "exec") {
		t.Fatalf("report text missing exec:\n%s", text)
	}

	if !strings.Contains(o.PrometheusText(), "faasflow_invocations_total") {
		t.Fatal("exposition missing invocation counter")
	}
	data, err := o.WorkflowTrace(wf.Name())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"ph": "X"`) {
		t.Fatal("workflow trace has no spans")
	}
	if _, err := o.WorkflowTrace("nope"); err == nil {
		t.Fatal("want error for unobserved workflow")
	}

	// After detach nothing new is recorded.
	c.DetachObserver()
	before := o.Events()
	app.Run(1)
	if o.Events() != before {
		t.Fatalf("detached observer grew: %d -> %d", before, o.Events())
	}
}
