package faasflow

import (
	"testing"
	"time"
)

// TestFaultInjectionAndRecovery is the public-API chaos path: deploy a
// benchmark with recovery enabled, kill the worker hosting its tasks while
// closed-loop invocations are in flight, and require every invocation to
// complete with re-issues recorded.
func TestFaultInjectionAndRecovery(t *testing.T) {
	c := NewCluster()
	app, err := c.DeployWithRecovery(Benchmark("IR"), WorkerSP, Recovery{
		TaskTimeout: 20 * time.Second,
		BackoffBase: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Kill a worker that actually hosts tasks, mid-run.
	var victim string
	for _, w := range app.Placement() {
		victim = w
		break
	}
	if err := c.InjectFaults(FaultSchedule{{
		Kind: NodeDown, Node: victim, At: 3 * time.Second, Duration: 4 * time.Second,
	}}); err != nil {
		t.Fatal(err)
	}
	const n = 10
	stats := app.Run(n)
	if stats.Count != n {
		t.Fatalf("completed %d of %d invocations", stats.Count, n)
	}
	fs := app.FailureStats()
	if fs.FailedInvocations != 0 {
		t.Fatalf("%d invocations exhausted the recovery budget", fs.FailedInvocations)
	}
	if fs.Reissues == 0 && fs.Replacements == 0 {
		t.Error("node death produced no recovery activity")
	}
}

func TestInjectFaultsValidates(t *testing.T) {
	c := NewCluster()
	if err := c.InjectFaults(FaultSchedule{{Kind: NodeDown, Node: "no-such-node"}}); err == nil {
		t.Error("unknown fault target accepted")
	}
	if len(c.Workers()) == 0 {
		t.Fatal("cluster reports no workers")
	}
}

func TestRandomNodeKillsPublic(t *testing.T) {
	c := NewCluster()
	s := RandomNodeKills(42, c.Workers(), 2, time.Minute, time.Second, 3*time.Second)
	if len(s) != 2 {
		t.Fatalf("schedule length %d, want 2", len(s))
	}
	if err := c.InjectFaults(s); err != nil {
		t.Fatal(err)
	}
}
