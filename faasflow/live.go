package faasflow

import (
	"context"

	"repro/internal/live"
)

// LiveInput is one resolved data dependency handed to a live handler.
type LiveInput = live.Input

// LiveHandler executes one task invocation for real: it receives the
// upstream outputs as byte payloads and returns its own.
type LiveHandler = live.Handler

// LiveOptions tunes a live runner.
type LiveOptions struct {
	// Parallelism caps concurrently running handlers (0 = unlimited).
	Parallelism int
	// MaxAttempts retries failing handlers (default 1).
	MaxAttempts int
}

// LiveRunner executes a workflow's DAG with real Go handlers and real
// data — the embeddable-engine face of the library, next to the simulated
// cluster. Triggering follows the same WorkerSP discipline as the
// simulation engine: each completing node fires its ready successors
// itself, with no central loop.
type LiveRunner struct {
	inner *live.Runner
}

// NewLiveRunner builds a live runner for the workflow. handlers maps each
// function name the workflow references to its implementation.
func NewLiveRunner(wf *Workflow, handlers map[string]LiveHandler, opts LiveOptions) (*LiveRunner, error) {
	r, err := live.New(wf.bench.Graph, handlers, live.Options{
		Parallelism: opts.Parallelism,
		MaxAttempts: opts.MaxAttempts,
	})
	if err != nil {
		return nil, err
	}
	return &LiveRunner{inner: r}, nil
}

// Run executes the workflow once and returns each sink step's output
// (foreach sinks appear as "name#replica"). Concurrent Runs are
// independent.
func (r *LiveRunner) Run(ctx context.Context) (map[string][]byte, error) {
	res, err := r.inner.Run(ctx)
	if err != nil {
		return nil, err
	}
	return res.Outputs, nil
}
